//! The `lassynth` command-line tool: the paper's workflow (Fig. 12a)
//! from the shell.
//!
//! ```text
//! lassynth synth  <spec.json>  [--out DIR] [--timeout SECS] [--max-memory MB] [--seeds N|auto]
//!                              [--stats] [--varisat] [--restart-policy luby|ema] [--chrono on|off]
//!                              [--audit-cnf] [--certify] [--drat FILE] [--share-clauses]
//!                              [--quantum N]
//! lassynth verify <design.lasre>
//! lassynth render <design.lasre>
//! lassynth dimacs <spec.json>
//! lassynth depth  <spec.json> --lo L --hi H [--start S] [--timeout SECS] [--deadline SECS]
//!                              [--max-memory MB] [--no-incremental] [--stats]
//!                              [--restart-policy luby|ema] [--chrono on|off] [--audit-cnf]
//!                              [--certify] [--depth-parallel] [--share-clauses] [--quantum N]
//! lassynth lint-cnf <spec.json|file.cnf> [--lo L --hi H]
//! lassynth check-proof <file.cnf> <file.drat>
//! ```
//!
//! `synth` writes `<name>.lasre` and `<name>.gltf` into `--out`
//! (default `.`); with `--seeds N` it runs a parallel portfolio of N
//! diversified workers, and `--seeds auto` picks the portfolio
//! automatically when the encoding is large. `--stats` prints the
//! winning solver's search counters after the verdict.
//!
//! `depth` runs the min-depth search as one incremental solver session
//! by default (learnt clauses shared across probes);
//! `--no-incremental` re-encodes and re-solves every probe from
//! scratch, and `--stats` prints each probe's search counters.
//!
//! `--share-clauses` (with `--seeds`) switches the portfolio to a
//! deterministic single-threaded lockstep fleet whose workers exchange
//! low-LBD learnt clauses; `--depth-parallel` on `depth` gives every
//! candidate depth its own lockstep worker over one shared layered
//! encoding, monotone pruning cancelling dominated depths (the two
//! compose: sharing then runs between the depth workers). `--quantum N`
//! sets the per-turn conflict quantum of either lockstep driver. Both
//! modes are deterministic — same spec, seeds and quantum reproduce the
//! same verdicts, stats and import sequences — and `--stats` reports
//! the exchange counters (exported/imported/kept) plus a `portfolio
//! total` line covering every worker, losers included.
//!
//! `--restart-policy luby|ema` and `--chrono on|off` override the CDCL
//! restart schedule and chronological backtracking for every solver of
//! the run (including portfolio workers), so per-instance tuning needs
//! no rebuild.
//!
//! `--timeout SECS` and `--max-memory MB` arm the resource governor: a
//! wall-clock budget and an arena memory ceiling every solver of the
//! run honours cooperatively (both require the in-tree CDCL backend —
//! they conflict with `--varisat`, whose shim cannot be interrupted).
//! `depth --deadline SECS` is the depth-search spelling of the same
//! wall clock (the sequential walk budgets each probe; the lockstep
//! `--depth-parallel` fleet treats it as one whole-search deadline).
//! An expired governor does not discard work: `depth` reports the
//! anytime window — the certified lower bound (one past the largest
//! refuted depth) and the best SAT depth found so far — instead of
//! erroring, and `--stats` shows which budget axis expired. Workers
//! that crash mid-run are quarantined and reported on stderr while the
//! survivors finish the job.
//!
//! `lint-cnf` runs the CNF structural analyzer (`sat::analyze`) over a
//! spec's encoding — layered when `--lo`/`--hi` are given — or over a
//! raw DIMACS file (`.cnf`/`.dimacs`), and exits non-zero on fatal
//! findings (contradictory root units, empty clauses). `--audit-cnf` on
//! `synth`/`depth` prints the same report before solving.
//!
//! `--certify` on `synth`/`depth` logs a DRAT proof in the solver and
//! runs the in-tree forward checker on every UNSAT answer (each depth
//! probe of a min-depth search) before it is reported; a verdict whose
//! proof fails to check becomes an error, never a trusted answer.
//! `--drat FILE` (single-solve `synth` only) also writes the proof out
//! — text DRAT, or binary when FILE ends in `.bdrat` — for external
//! `drat-trim` cross-checking against the `dimacs` output.
//!
//! `check-proof` replays a DRAT file (text or binary, auto-detected)
//! against a DIMACS CNF with the in-tree forward RUP/RAT checker and
//! exits 0 only if every step checks and the proof refutes the CNF.

#![forbid(unsafe_code)]

use lassynth::synth::{optimize, BackendChoice, SynthOptions, SynthResult, Synthesizer};
use lassynth::{lasre, sat, viz};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("dimacs") => cmd_dimacs(&args[1..]),
        Some("depth") => cmd_depth(&args[1..]),
        Some("lint-cnf") => cmd_lint_cnf(&args[1..]),
        Some("check-proof") => cmd_check_proof(&args[1..]),
        _ => {
            eprintln!(
                "usage: lassynth <synth|verify|render|dimacs|depth|lint-cnf|check-proof> \
                 <file> [flags]"
            );
            eprintln!("       see `src/main.rs` docs or README.md");
            2
        }
    };
    std::process::exit(code);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load_spec(path: &str) -> Result<lasre::LasSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec: lasre::LasSpec =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    spec.validate().map_err(|e| format!("invalid spec: {e}"))?;
    Ok(spec)
}

fn options_from(args: &[String]) -> Result<SynthOptions, String> {
    let mut options = SynthOptions::default();
    if let Some(t) = flag_value(args, "--timeout") {
        let secs =
            t.parse::<u64>().ok().filter(|&s| s > 0).ok_or_else(|| {
                format!("--timeout expects a positive number of seconds, got {t:?}")
            })?;
        options.budget.max_time = Some(Duration::from_secs(secs));
    }
    if let Some(m) = flag_value(args, "--max-memory") {
        let mb = m
            .parse::<u64>()
            .ok()
            .filter(|&m| m > 0)
            .ok_or_else(|| format!("--max-memory expects a positive size in MiB, got {m:?}"))?;
        // The governor accounts arena memory in 4-byte words.
        options.budget.max_memory_words = Some(mb * (1 << 20) / 4);
    }
    if let Some(policy) = flag_value(args, "--restart-policy") {
        options.restart_policy = Some(match policy.as_str() {
            "luby" => sat::RestartPolicy::Luby,
            "ema" => sat::RestartPolicy::Ema,
            other => {
                return Err(format!(
                    "--restart-policy expects \"luby\" or \"ema\", got {other:?}"
                ))
            }
        });
    }
    if let Some(chrono) = flag_value(args, "--chrono") {
        options.chrono = Some(match chrono.as_str() {
            "on" => true,
            "off" => false,
            other => return Err(format!("--chrono expects \"on\" or \"off\", got {other:?}")),
        });
    }
    if args.iter().any(|a| a == "--certify") {
        options.certify = true;
    }
    if args.iter().any(|a| a == "--share-clauses") {
        options.share_clauses = true;
    }
    if args.iter().any(|a| a == "--depth-parallel") {
        options.depth_parallel = true;
    }
    if let Some(q) = flag_value(args, "--quantum") {
        options.parallel_quantum = q
            .parse::<u64>()
            .ok()
            .filter(|&q| q > 0)
            .ok_or_else(|| format!("--quantum expects a positive conflict count, got {q:?}"))?;
    }
    if args.iter().any(|a| a == "--varisat") {
        if !cfg!(feature = "varisat") {
            return Err(
                "--varisat requested, but this binary was built without the \
                        `varisat` feature (on by default); rebuild with it enabled"
                    .into(),
            );
        }
        if options.share_clauses || options.depth_parallel {
            return Err(
                "--share-clauses/--depth-parallel need the CDCL backend (drop --varisat)".into(),
            );
        }
        if options.budget.max_time.is_some() || options.budget.max_memory_words.is_some() {
            // The varisat shim has no cooperative interrupt: a governor
            // it would silently ignore is a usage error, not a no-op.
            return Err(
                "--timeout/--max-memory need the CDCL backend's cooperative resource \
                 governor (drop --varisat)"
                    .into(),
            );
        }
        options.backend = BackendChoice::Varisat;
    }
    Ok(options)
}

/// Above this many CNF variables, `--seeds auto` switches from a single
/// solve to a diversified seed portfolio: big encodings show the
/// paper's multi-× seed variance, so hedging across configurations
/// beats one lucky-or-not run.
const AUTO_PORTFOLIO_VARS: usize = 20_000;
/// Portfolio width used by `--seeds auto`.
const AUTO_PORTFOLIO_SEEDS: u64 = 4;

fn print_stats(stats: sat::SolverStats, seed: Option<u64>) {
    if let Some(seed) = seed {
        println!("solver stats (winning seed {seed}):");
    } else {
        println!("solver stats:");
    }
    // `conflicts` counts every falsified clause the search hit, but
    // some of those were really missed lower-level implications that
    // chronological backtracking repaired without clause learning —
    // report the analyzed (clause-learning) count separately so the
    // two are not conflated.
    let analyzed = stats.conflicts.saturating_sub(stats.missed_implications);
    println!(
        "  decisions={} conflicts={} analyzed_conflicts={} repaired_missed_implications={}",
        stats.decisions, stats.conflicts, analyzed, stats.missed_implications
    );
    println!(
        "  propagations={} restarts={}",
        stats.propagations, stats.restarts
    );
    println!(
        "  learned={} deleted={} minimized_lits={} gc_passes={} gc_reclaimed_words={}",
        stats.learned,
        stats.deleted,
        stats.minimized_lits,
        stats.gc_passes,
        stats.gc_reclaimed_words
    );
    println!(
        "  vivified_lits={} subsumed_clauses={} strengthened_clauses={} chrono_backtracks={}",
        stats.vivified_lits,
        stats.subsumed_clauses,
        stats.strengthened_clauses,
        stats.chrono_backtracks
    );
    println!(
        "  oob_enqueues={} restarts_blocked={} rephases={}",
        stats.oob_enqueues, stats.restarts_blocked, stats.rephases
    );
    println!(
        "  eliminated_vars={} elim_resolvents={} probed_literals={} failed_literals={}",
        stats.eliminated_vars, stats.elim_resolvents, stats.probed_literals, stats.failed_literals
    );
    println!(
        "  exported_clauses={} imported_clauses={} imported_kept={}",
        stats.exported_clauses, stats.imported_clauses, stats.imported_kept
    );
    println!(
        "  exhausted_conflicts={} exhausted_propagations={} exhausted_deadline={} \
         exhausted_memory={} exhausted_cancelled={}",
        stats.exhausted_conflicts,
        stats.exhausted_propagations,
        stats.exhausted_deadline,
        stats.exhausted_memory,
        stats.exhausted_cancelled
    );
    if let Some(reason) = stats.exhaustion_reason() {
        println!("  gave up on: {reason}");
    }
}

/// How `--seeds` resolves: one solve, an explicit portfolio width, or
/// size-triggered portfolio selection.
enum SeedsMode {
    Single,
    Portfolio(u64),
    Auto,
}

fn parse_seeds_flag(flag: Option<&str>) -> Result<SeedsMode, String> {
    match flag {
        None => Ok(SeedsMode::Single),
        Some("auto") => Ok(SeedsMode::Auto),
        Some(s) => match s.parse::<u64>() {
            Ok(0) | Ok(1) => Ok(SeedsMode::Single),
            Ok(n) => Ok(SeedsMode::Portfolio(n)),
            Err(_) => Err(format!("--seeds expects a number or \"auto\", got {s:?}")),
        },
    }
}

/// Dispatches a synth run: single solve, explicit portfolio
/// (`--seeds N`), or size-triggered portfolio (`--seeds auto`).
fn run_synth(
    spec: lasre::LasSpec,
    options: SynthOptions,
    mode: SeedsMode,
    want_stats: bool,
    drat_out: Option<&str>,
) -> Result<SynthResult, lassynth::synth::SynthError> {
    let single = |synth: Synthesizer, options: SynthOptions| {
        let mut s = synth.with_options(options);
        let result = s.run();
        if want_stats {
            match s.last_solver_stats() {
                Some(stats) => print_stats(stats, None),
                None => println!("solver stats: unavailable for this backend"),
            }
        }
        if let Some(path) = drat_out {
            match s.last_proof() {
                Some(log) => {
                    // Binary DRAT for `.bdrat` files, text otherwise —
                    // both formats drat-trim understands.
                    let binary = path.ends_with(".bdrat");
                    let mut buf = Vec::new();
                    log.write_drat(&mut buf, binary).expect("serialize DRAT");
                    std::fs::write(path, buf).expect("write DRAT file");
                    println!("wrote {path} ({} proof steps)", log.len());
                }
                None => println!("no proof to write (requires --certify)"),
            }
        }
        result
    };
    let portfolio = |spec: lasre::LasSpec, options: SynthOptions, n: u64| {
        let seed_list: Vec<u64> = (0..n).collect();
        let outcome = optimize::solve_portfolio_detailed(&spec, &seed_list, &options)?;
        // Crashed workers are operational news, stats or not: the fleet
        // finished without them, and the operator should know.
        for (seed, msg) in &outcome.quarantined {
            eprintln!("warning: worker seed {seed} crashed and was quarantined: {msg}");
        }
        if want_stats {
            match outcome.stats {
                Some(stats) => print_stats(stats, outcome.winner_seed),
                None => println!("solver stats: no worker reported statistics"),
            }
            // The whole fleet's bill, losers included — the winner's
            // share above is what the verdict cost, this is what the
            // machine paid.
            match outcome.total {
                Some(t) => {
                    println!(
                        "portfolio total ({} workers): conflicts={} propagations={} \
                         decisions={} restarts={} exported_clauses={} imported_clauses={} \
                         imported_kept={}",
                        outcome.worker_stats.len(),
                        t.conflicts,
                        t.propagations,
                        t.decisions,
                        t.restarts,
                        t.exported_clauses,
                        t.imported_clauses,
                        t.imported_kept
                    );
                    println!(
                        "portfolio exhaustion: conflicts={} propagations={} deadline={} \
                         memory={} cancelled={} quarantined_workers={}",
                        t.exhausted_conflicts,
                        t.exhausted_propagations,
                        t.exhausted_deadline,
                        t.exhausted_memory,
                        t.exhausted_cancelled,
                        outcome.quarantined.len()
                    );
                }
                None => println!("portfolio total: no worker reported statistics"),
            }
        }
        Ok(outcome.result)
    };
    match mode {
        SeedsMode::Single => single(Synthesizer::new(spec)?, options),
        SeedsMode::Portfolio(n) => portfolio(spec, options, n),
        SeedsMode::Auto => {
            // Encode once to size the instance exactly. On the
            // portfolio path this sizing encode is thrown away (each
            // worker re-encodes in its own thread), but it costs
            // milliseconds against the minutes-scale solves that
            // trigger the portfolio; small instances solve directly on
            // the already-built encoding.
            let synth = Synthesizer::new(spec.clone())?;
            let vars = synth.cnf().num_vars();
            if vars > AUTO_PORTFOLIO_VARS {
                println!(
                    "({vars} variables > {AUTO_PORTFOLIO_VARS}: \
                     running a {AUTO_PORTFOLIO_SEEDS}-seed diversified portfolio)"
                );
                portfolio(spec, options, AUTO_PORTFOLIO_SEEDS)
            } else {
                single(synth, options)
            }
        }
    }
}

fn cmd_synth(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!(
            "usage: lassynth synth <spec.json> [--out DIR] [--timeout SECS] [--max-memory MB] \
             [--seeds N|auto] [--stats] [--restart-policy luby|ema] [--chrono on|off] \
             [--audit-cnf] [--certify] [--drat FILE] [--share-clauses] [--quantum N]"
        );
        return 2;
    };
    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let out_dir = flag_value(args, "--out").unwrap_or_else(|| ".".into());
    let options = match options_from(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let name = spec.name.clone();
    let want_stats = args.iter().any(|a| a == "--stats");
    if args.iter().any(|a| a == "--audit-cnf") {
        match lassynth::synth::encode::encode(&spec) {
            Ok(enc) => println!("{}", enc.lint()),
            Err(e) => {
                eprintln!("invalid spec: {e}");
                return 1;
            }
        }
    }
    let mode = match parse_seeds_flag(flag_value(args, "--seeds").as_deref()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if options.share_clauses && matches!(mode, SeedsMode::Single) {
        eprintln!("--share-clauses needs a portfolio (add --seeds N or --seeds auto)");
        return 2;
    }
    let drat_out = flag_value(args, "--drat");
    if drat_out.is_some() && !matches!(mode, SeedsMode::Single) {
        // The proof lives in the winning worker's solver; only the
        // single-solve path can hand it back.
        eprintln!("--drat requires a single solve (drop --seeds)");
        return 2;
    }
    if drat_out.is_some() && !options.certify {
        eprintln!("--drat requires --certify (no proof is logged otherwise)");
        return 2;
    }
    let certify = options.certify;
    let start = std::time::Instant::now();
    let result = run_synth(spec, options, mode, want_stats, drat_out.as_deref());
    match result {
        Ok(SynthResult::Sat(design)) => {
            println!(
                "SAT in {:.2?} (verified: {})",
                start.elapsed(),
                design.verified()
            );
            println!("{}", lasre::slices::render(&design));
            std::fs::create_dir_all(&out_dir).ok();
            let lasre_path = format!("{out_dir}/{name}.lasre");
            std::fs::write(&lasre_path, lasre::to_lasre(&design)).expect("write lasre");
            let scene = viz::Scene::from_design(&design, viz::SceneOptions::default());
            let gltf_path = format!("{out_dir}/{name}.gltf");
            std::fs::write(&gltf_path, viz::gltf::to_gltf(&scene)).expect("write gltf");
            println!("wrote {lasre_path} and {gltf_path}");
            0
        }
        Ok(SynthResult::Unsat) => {
            println!(
                "UNSAT{} in {:.2?} — no design fits this volume",
                if certify { " (DRAT proof checked)" } else { "" },
                start.elapsed()
            );
            1
        }
        Ok(SynthResult::Unknown) => {
            println!("UNKNOWN — budget expired after {:.2?}", start.elapsed());
            1
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn cmd_verify(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: lassynth verify <design.lasre>");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reading {path}: {e}");
            return 1;
        }
    };
    let design = match lasre::from_lasre(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let violations = lasre::check_validity(&design);
    if !violations.is_empty() {
        println!("INVALID: {} constraint violations", violations.len());
        for v in violations.iter().take(10) {
            println!("  {v}");
        }
        return 1;
    }
    match lassynth::synth::verify::verify(&design) {
        Ok(flows) => {
            println!(
                "VERIFIED: all {} stabilizers realized ({} flows)",
                design.spec().nstab(),
                flows.rank()
            );
            0
        }
        Err(e) => {
            println!("VERIFICATION FAILED: {e}");
            1
        }
    }
}

fn cmd_render(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: lassynth render <design.lasre>");
        return 2;
    };
    match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|t| lasre::from_lasre(&t).map_err(|e| e.to_string()))
    {
        Ok(design) => {
            println!("{}", lasre::slices::render(&design));
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_dimacs(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: lassynth dimacs <spec.json>");
        return 2;
    };
    match load_spec(path).and_then(|spec| Synthesizer::new(spec).map_err(|e| e.to_string())) {
        Ok(synth) => {
            print!("{}", sat::dimacs::to_string(synth.cnf()));
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// Whether a lint report contains findings that make the instance
/// unsolvable (everything else is informational).
fn lint_is_fatal(report: &sat::CnfReport) -> bool {
    report.count(sat::analyze::LINT_CONTRADICTORY_UNITS) > 0
        || report.count(sat::analyze::LINT_EMPTY_CLAUSE) > 0
}

fn cmd_lint_cnf(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: lassynth lint-cnf <spec.json|file.cnf> [--lo L --hi H]");
        return 2;
    };
    let report = if path.ends_with(".cnf") || path.ends_with(".dimacs") {
        match std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))
            .and_then(|t| sat::dimacs::parse_str(&t).map_err(|e| format!("parsing {path}: {e}")))
        {
            Ok(cnf) => sat::analyze::analyze(&cnf),
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    } else {
        let spec = match load_spec(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        let lo = flag_value(args, "--lo").and_then(|s| s.parse().ok());
        let hi = flag_value(args, "--hi").and_then(|s| s.parse().ok());
        let layered = lo.is_some() || hi.is_some();
        let report = if layered {
            // Same defaults as `depth`, so the linted CNF is the one a
            // depth search would solve.
            let lo = lo.unwrap_or(1).max(1);
            let hi = hi.unwrap_or(spec.max_k + 2);
            if lo > hi {
                eprintln!("--lo {lo} must not exceed --hi {hi}");
                return 2;
            }
            lassynth::synth::encode::encode_layered(&spec, lo, hi).map(|l| l.lint())
        } else {
            lassynth::synth::encode::encode(&spec).map(|e| e.lint())
        };
        match report {
            Ok(r) => r,
            Err(e) => {
                eprintln!("invalid spec: {e}");
                return 1;
            }
        }
    };
    println!("{report}");
    if lint_is_fatal(&report) {
        eprintln!("fatal encoder lints fired");
        1
    } else {
        0
    }
}

/// Replays a DRAT file against a DIMACS CNF with the in-tree forward
/// RUP/RAT checker. Exit 0 only for a checked refutation.
fn cmd_check_proof(args: &[String]) -> i32 {
    let (Some(cnf_path), Some(drat_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: lassynth check-proof <file.cnf> <file.drat>");
        return 2;
    };
    let cnf = match std::fs::read_to_string(cnf_path)
        .map_err(|e| format!("reading {cnf_path}: {e}"))
        .and_then(|t| sat::dimacs::parse_str(&t).map_err(|e| format!("parsing {cnf_path}: {e}")))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    // Binary DRAT is not UTF-8: read raw bytes and let the parser
    // auto-detect the format.
    let drat = match std::fs::read(drat_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("reading {drat_path}: {e}");
            return 1;
        }
    };
    let log = match sat::ProofLog::from_cnf_and_drat(&cnf, &drat) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("parsing {drat_path}: {e}");
            return 1;
        }
    };
    match sat::proof::check(&log) {
        Ok(report) if report.refuted() => {
            println!(
                "PROOF OK: {} steps, {} derivations checked, formula refuted",
                report.steps, report.derived_checked
            );
            0
        }
        Ok(report) => {
            println!(
                "PROOF INCOMPLETE: all {} steps check, but no refutation \
                 (the empty clause is never derived)",
                report.steps
            );
            1
        }
        Err(e) => {
            println!("PROOF REJECTED: {e}");
            1
        }
    }
}

fn cmd_depth(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!(
            "usage: lassynth depth <spec.json> --lo L --hi H [--start S] [--timeout SECS] \
             [--deadline SECS] [--max-memory MB] [--no-incremental] [--stats] \
             [--restart-policy luby|ema] [--chrono on|off] [--audit-cnf] [--certify] \
             [--depth-parallel] [--share-clauses] [--quantum N]"
        );
        return 2;
    };
    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let lo = flag_value(args, "--lo")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let hi = flag_value(args, "--hi")
        .and_then(|s| s.parse().ok())
        .unwrap_or(spec.max_k + 2);
    if lo > hi {
        eprintln!("--lo {lo} must not exceed --hi {hi}");
        return 2;
    }
    // Default to the spec's depth; out-of-range starts are clamped
    // into the probed range (with a notice when explicitly given).
    let requested = flag_value(args, "--start").and_then(|s| s.parse().ok());
    let start = requested.unwrap_or(spec.max_k).clamp(lo, hi);
    if let Some(r) = requested {
        if r != start {
            eprintln!("note: --start {r} is outside [{lo}, {hi}]; starting at {start}");
        }
    }
    let mut options = match options_from(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    // `--deadline` is the depth-search spelling of `--timeout`: the
    // wall clock the resource governor enforces (per probe in the
    // sequential walk, whole-search in the depth-parallel fleet).
    if let Some(d) = flag_value(args, "--deadline") {
        if args.iter().any(|a| a == "--varisat") {
            eprintln!("--deadline needs the CDCL backend's resource governor (drop --varisat)");
            return 2;
        }
        let Some(secs) = d.parse::<u64>().ok().filter(|&s| s > 0) else {
            eprintln!("--deadline expects a positive number of seconds, got {d:?}");
            return 2;
        };
        options.budget.max_time = Some(Duration::from_secs(secs));
    }
    // Incremental probing is the default; `--no-incremental` restores
    // the from-scratch probe sequence (and `--incremental` is accepted
    // for symmetry).
    if args.iter().any(|a| a == "--no-incremental") {
        options.incremental = false;
    }
    let want_stats = args.iter().any(|a| a == "--stats");
    if args.iter().any(|a| a == "--audit-cnf") {
        // Lint the layered CNF the incremental search will solve.
        match lassynth::synth::encode::encode_layered(&spec, lo, hi) {
            Ok(layered) => println!("{}", layered.lint()),
            Err(e) => {
                eprintln!("invalid spec: {e}");
                return 1;
            }
        }
    }
    match optimize::find_min_depth(&spec, lo, hi, start, &options) {
        Ok(search) => {
            for p in &search.probes {
                println!(
                    "max_k {}: {}{} ({:.2?})",
                    p.max_k,
                    match (p.sat, p.exhaustion) {
                        (Some(true), _) => "SAT".to_string(),
                        (Some(false), _) => "UNSAT".to_string(),
                        (None, Some(reason)) => format!("UNKNOWN [{reason}]"),
                        (None, None) => "UNKNOWN".to_string(),
                    },
                    if p.certified { " [proof checked]" } else { "" },
                    p.time
                );
                if want_stats {
                    match p.stats {
                        Some(s) => println!(
                            "    conflicts={} analyzed_conflicts={} \
                             repaired_missed_implications={} propagations={} decisions={} \
                             restarts={} learned={} vivified_lits={} subsumed_clauses={} \
                             strengthened_clauses={} chrono_backtracks={} restarts_blocked={} \
                             rephases={} eliminated_vars={} elim_resolvents={} \
                             probed_literals={} failed_literals={} exported_clauses={} \
                             imported_clauses={} imported_kept={}",
                            s.conflicts,
                            s.conflicts.saturating_sub(s.missed_implications),
                            s.missed_implications,
                            s.propagations,
                            s.decisions,
                            s.restarts,
                            s.learned,
                            s.vivified_lits,
                            s.subsumed_clauses,
                            s.strengthened_clauses,
                            s.chrono_backtracks,
                            s.restarts_blocked,
                            s.rephases,
                            s.eliminated_vars,
                            s.elim_resolvents,
                            s.probed_literals,
                            s.failed_literals,
                            s.exported_clauses,
                            s.imported_clauses,
                            s.imported_kept
                        ),
                        None => println!("    (no solver stats for this backend)"),
                    }
                }
            }
            for (k, msg) in &search.quarantined {
                eprintln!("warning: depth-{k} worker crashed and was quarantined: {msg}");
            }
            let (bound, best) = search.window();
            if best == Some(bound) {
                // Certified minimum: every shallower depth in range is
                // refuted (or `bound` is the range floor), so budget
                // expiries or crashes elsewhere change nothing.
                println!("optimal depth: {bound}");
                0
            } else if search.exhaustion.is_none() && search.quarantined.is_empty() {
                println!("no satisfiable depth in [{lo}, {hi}]");
                1
            } else {
                // The governor (or a crash) stopped the search with the
                // window still open: report the anytime answer instead
                // of pretending nothing was learnt.
                match search.exhaustion {
                    Some(reason) => println!("search stopped early ({reason})"),
                    None => println!("search stopped early (undecided workers crashed)"),
                }
                match best {
                    Some(d) => {
                        println!(
                            "anytime window: certified lower bound {bound}, best SAT depth {d}"
                        );
                        0
                    }
                    None => {
                        println!(
                            "anytime window: certified lower bound {bound}, \
                             no SAT depth found yet"
                        );
                        1
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}
