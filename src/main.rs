//! The `lassynth` command-line tool: the paper's workflow (Fig. 12a)
//! from the shell.
//!
//! ```text
//! lassynth synth  <spec.json>  [--out DIR] [--timeout SECS] [--seeds N] [--varisat]
//! lassynth verify <design.lasre>
//! lassynth render <design.lasre>
//! lassynth dimacs <spec.json>
//! lassynth depth  <spec.json> --lo L --hi H [--start S] [--timeout SECS]
//! ```
//!
//! `synth` writes `<name>.lasre` and `<name>.gltf` into `--out`
//! (default `.`); with `--seeds N` it runs a parallel seed portfolio.

use lassynth::synth::{optimize, BackendChoice, SynthOptions, SynthResult, Synthesizer};
use lassynth::{lasre, sat, viz};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("dimacs") => cmd_dimacs(&args[1..]),
        Some("depth") => cmd_depth(&args[1..]),
        _ => {
            eprintln!("usage: lassynth <synth|verify|render|dimacs|depth> <file> [flags]");
            eprintln!("       see `src/main.rs` docs or README.md");
            2
        }
    };
    std::process::exit(code);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load_spec(path: &str) -> Result<lasre::LasSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec: lasre::LasSpec =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    spec.validate().map_err(|e| format!("invalid spec: {e}"))?;
    Ok(spec)
}

fn options_from(args: &[String]) -> Result<SynthOptions, String> {
    let mut options = SynthOptions::default();
    if let Some(t) = flag_value(args, "--timeout").and_then(|s| s.parse().ok()) {
        options.budget.max_time = Some(Duration::from_secs(t));
    }
    if args.iter().any(|a| a == "--varisat") {
        if !cfg!(feature = "varisat") {
            return Err(
                "--varisat requested, but this binary was built without the \
                        `varisat` feature (on by default); rebuild with it enabled"
                    .into(),
            );
        }
        options.backend = BackendChoice::Varisat;
    }
    Ok(options)
}

fn cmd_synth(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: lassynth synth <spec.json> [--out DIR] [--timeout SECS] [--seeds N]");
        return 2;
    };
    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let out_dir = flag_value(args, "--out").unwrap_or_else(|| ".".into());
    let options = match options_from(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let name = spec.name.clone();
    let seeds: usize = flag_value(args, "--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let start = std::time::Instant::now();
    let result = if seeds > 1 {
        let seed_list: Vec<u64> = (0..seeds as u64).collect();
        optimize::solve_portfolio(&spec, &seed_list, &options)
    } else {
        Synthesizer::new(spec)
            .map(|s| s.with_options(options))
            .and_then(|mut s| s.run())
    };
    match result {
        Ok(SynthResult::Sat(design)) => {
            println!(
                "SAT in {:.2?} (verified: {})",
                start.elapsed(),
                design.verified()
            );
            println!("{}", lasre::slices::render(&design));
            std::fs::create_dir_all(&out_dir).ok();
            let lasre_path = format!("{out_dir}/{name}.lasre");
            std::fs::write(&lasre_path, lasre::to_lasre(&design)).expect("write lasre");
            let scene = viz::Scene::from_design(&design, viz::SceneOptions::default());
            let gltf_path = format!("{out_dir}/{name}.gltf");
            std::fs::write(&gltf_path, viz::gltf::to_gltf(&scene)).expect("write gltf");
            println!("wrote {lasre_path} and {gltf_path}");
            0
        }
        Ok(SynthResult::Unsat) => {
            println!(
                "UNSAT in {:.2?} — no design fits this volume",
                start.elapsed()
            );
            1
        }
        Ok(SynthResult::Unknown) => {
            println!("UNKNOWN — budget expired after {:.2?}", start.elapsed());
            1
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn cmd_verify(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: lassynth verify <design.lasre>");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reading {path}: {e}");
            return 1;
        }
    };
    let design = match lasre::from_lasre(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let violations = lasre::check_validity(&design);
    if !violations.is_empty() {
        println!("INVALID: {} constraint violations", violations.len());
        for v in violations.iter().take(10) {
            println!("  {v}");
        }
        return 1;
    }
    match lassynth::synth::verify::verify(&design) {
        Ok(flows) => {
            println!(
                "VERIFIED: all {} stabilizers realized ({} flows)",
                design.spec().nstab(),
                flows.rank()
            );
            0
        }
        Err(e) => {
            println!("VERIFICATION FAILED: {e}");
            1
        }
    }
}

fn cmd_render(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: lassynth render <design.lasre>");
        return 2;
    };
    match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|t| lasre::from_lasre(&t).map_err(|e| e.to_string()))
    {
        Ok(design) => {
            println!("{}", lasre::slices::render(&design));
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_dimacs(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: lassynth dimacs <spec.json>");
        return 2;
    };
    match load_spec(path).and_then(|spec| Synthesizer::new(spec).map_err(|e| e.to_string())) {
        Ok(synth) => {
            print!("{}", sat::dimacs::to_string(synth.cnf()));
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_depth(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: lassynth depth <spec.json> --lo L --hi H [--start S]");
        return 2;
    };
    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let lo = flag_value(args, "--lo")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let hi = flag_value(args, "--hi")
        .and_then(|s| s.parse().ok())
        .unwrap_or(spec.max_k + 2);
    if lo > hi {
        eprintln!("--lo {lo} must not exceed --hi {hi}");
        return 2;
    }
    // Default to the spec's depth; out-of-range starts are clamped
    // into the probed range (with a notice when explicitly given).
    let requested = flag_value(args, "--start").and_then(|s| s.parse().ok());
    let start = requested.unwrap_or(spec.max_k).clamp(lo, hi);
    if let Some(r) = requested {
        if r != start {
            eprintln!("note: --start {r} is outside [{lo}, {hi}]; starting at {start}");
        }
    }
    let options = match options_from(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    match optimize::find_min_depth(&spec, lo, hi, start, &options) {
        Ok(search) => {
            for p in &search.probes {
                println!(
                    "max_k {}: {} ({:.2?})",
                    p.max_k,
                    match p.sat {
                        Some(true) => "SAT",
                        Some(false) => "UNSAT",
                        None => "UNKNOWN",
                    },
                    p.time
                );
            }
            match search.best_depth() {
                Some(d) => {
                    println!("optimal depth: {d}");
                    0
                }
                None => {
                    println!("no satisfiable depth in [{lo}, {hi}]");
                    1
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}
