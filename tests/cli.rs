//! CLI smoke tests: drive the `lassynth` binary end to end, the way a
//! user would (paper Fig. 12a workflow from the shell).

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lassynth"))
}

fn cnot_spec_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/specs/cnot.json")
}

#[test]
fn dimacs_emits_well_formed_cnf() {
    let out = bin()
        .arg("dimacs")
        .arg(cnot_spec_path())
        .output()
        .expect("run lassynth");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf-8 dimacs");
    let mut lines = text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('c'));
    let header: Vec<&str> = lines
        .next()
        .expect("header line")
        .split_whitespace()
        .collect();
    assert_eq!(&header[..2], &["p", "cnf"], "DIMACS problem line");
    let num_vars: i64 = header[2].parse().expect("var count");
    let num_clauses: usize = header[3].parse().expect("clause count");
    assert!(
        num_vars > 0 && num_clauses > 0,
        "CNOT encodes to a non-trivial CNF"
    );
    let mut clauses = 0;
    for line in lines {
        let lits: Vec<i64> = line
            .split_whitespace()
            .map(|t| t.parse().expect("integer literal"))
            .collect();
        assert_eq!(lits.last(), Some(&0), "clause terminated by 0: {line:?}");
        for &lit in &lits[..lits.len() - 1] {
            assert!(lit != 0 && lit.abs() <= num_vars, "literal in range: {lit}");
        }
        clauses += 1;
    }
    assert_eq!(
        clauses, num_clauses,
        "clause count matches the problem line"
    );
}

#[test]
fn synth_writes_artifacts_that_verify_and_render() {
    let dir = std::env::temp_dir().join(format!("lassynth-cli-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let out = bin()
        .arg("synth")
        .arg(cnot_spec_path())
        .arg("--out")
        .arg(&dir)
        .output()
        .expect("run lassynth synth");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SAT"), "synth reports SAT: {stdout}");
    assert!(
        stdout.contains("verified: true"),
        "synth self-verifies: {stdout}"
    );

    let lasre = dir.join("cnot.lasre");
    let gltf = dir.join("cnot.gltf");
    assert!(lasre.exists(), "wrote {}", lasre.display());
    assert!(
        std::fs::metadata(&gltf).expect("gltf written").len() > 0,
        "non-empty glTF"
    );

    // `verify` accepts the synthesized design.
    let v = bin()
        .arg("verify")
        .arg(&lasre)
        .output()
        .expect("run lassynth verify");
    assert!(
        v.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&v.stderr)
    );
    assert!(
        String::from_utf8_lossy(&v.stdout).contains("VERIFIED"),
        "verify accepts the design"
    );

    // `render` reproduces the time slices.
    let r = bin()
        .arg("render")
        .arg(&lasre)
        .output()
        .expect("run lassynth render");
    assert!(r.status.success());
    assert!(
        String::from_utf8_lossy(&r.stdout).contains("k=2"),
        "render shows every layer"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn synth_stats_prints_solver_counters() {
    let dir = std::env::temp_dir().join(format!("lassynth-cli-stats-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = bin()
        .arg("synth")
        .arg(cnot_spec_path())
        .arg("--out")
        .arg(&dir)
        .arg("--stats")
        .output()
        .expect("run lassynth synth --stats");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("solver stats"), "stats header: {stdout}");
    for counter in ["decisions=", "conflicts=", "propagations=", "gc_passes="] {
        assert!(stdout.contains(counter), "{counter} missing: {stdout}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn synth_seeds_auto_solves_small_specs_directly() {
    let dir = std::env::temp_dir().join(format!("lassynth-cli-auto-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = bin()
        .arg("synth")
        .arg(cnot_spec_path())
        .arg("--out")
        .arg(&dir)
        .arg("--seeds")
        .arg("auto")
        .output()
        .expect("run lassynth synth --seeds auto");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SAT"), "auto mode still solves: {stdout}");
    // The CNOT encoding is far below the portfolio threshold, so no
    // portfolio banner appears.
    assert!(
        !stdout.contains("portfolio"),
        "small spec solves directly: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn depth_search_incremental_and_scratch_agree() {
    // Default (incremental) run, with per-probe stats.
    let inc = bin()
        .arg("depth")
        .arg(cnot_spec_path())
        .args(["--lo", "2", "--hi", "4", "--start", "3", "--stats"])
        .output()
        .expect("run lassynth depth");
    assert!(
        inc.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&inc.stderr)
    );
    let inc_out = String::from_utf8_lossy(&inc.stdout).to_string();
    assert!(inc_out.contains("optimal depth: 3"), "{inc_out}");
    assert!(
        inc_out.contains("conflicts=") && inc_out.contains("propagations="),
        "--stats prints per-probe counters: {inc_out}"
    );

    // The escape hatch probes the same depths with the same verdicts.
    let scratch = bin()
        .arg("depth")
        .arg(cnot_spec_path())
        .args(["--lo", "2", "--hi", "4", "--start", "3", "--no-incremental"])
        .output()
        .expect("run lassynth depth --no-incremental");
    assert!(scratch.status.success());
    let scratch_out = String::from_utf8_lossy(&scratch.stdout);
    assert!(scratch_out.contains("optimal depth: 3"), "{scratch_out}");
    let verdicts = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.starts_with("max_k"))
            .map(|l| l.split(" (").next().unwrap_or(l).to_string())
            .collect()
    };
    assert_eq!(
        verdicts(&inc_out),
        verdicts(&scratch_out),
        "probe sequences must agree across modes"
    );
}

/// `--restart-policy` and `--chrono` override the solver configuration
/// on both `synth` and `depth` without changing verdicts, and reject
/// malformed values with a usage error.
#[test]
fn solver_override_flags_work_on_synth_and_depth() {
    let dir = std::env::temp_dir().join(format!("lassynth-cli-overrides-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for policy in ["luby", "ema"] {
        let out = bin()
            .arg("synth")
            .arg(cnot_spec_path())
            .args(["--out"])
            .arg(&dir)
            .args(["--restart-policy", policy, "--chrono", "off", "--stats"])
            .output()
            .expect("run lassynth synth with overrides");
        assert!(
            out.status.success(),
            "policy {policy}: stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(text.contains("SAT"), "{text}");
        // (The CNOT instance finishes below every activation gate, so
        // counters cannot distinguish the override here — the
        // `solver_config_applies_overrides` unit test in
        // `crates/core/src/synthesize.rs` covers the plumbing; this
        // smoke test covers flag acceptance end to end.)
        assert!(text.contains("chrono_backtracks="), "{text}");
    }
    let _ = std::fs::remove_dir_all(&dir);

    let depth = bin()
        .arg("depth")
        .arg(cnot_spec_path())
        .args(["--lo", "2", "--hi", "4", "--start", "3"])
        .args(["--restart-policy", "ema", "--chrono", "on"])
        .output()
        .expect("run lassynth depth with overrides");
    assert!(
        depth.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&depth.stderr)
    );
    let text = String::from_utf8_lossy(&depth.stdout);
    assert!(text.contains("optimal depth: 3"), "{text}");

    // Malformed values exit with a usage error before any solving.
    for bad in [["--restart-policy", "glucose"], ["--chrono", "maybe"]] {
        let out = bin()
            .arg("synth")
            .arg(cnot_spec_path())
            .args(bad)
            .output()
            .expect("run lassynth synth with a bad override");
        assert_eq!(out.status.code(), Some(2), "{bad:?} must exit 2");
    }
}

/// `lint-cnf` analyzes both spec files (flat and layered) and raw
/// DIMACS, exits 0 on informational lints, and exits 1 only when a
/// fatal lint (contradictory root units / empty clause) fires.
#[test]
fn lint_cnf_reports_and_exit_codes() {
    // Flat spec encoding: real encodings legitimately carry
    // unconstrained (constant-folded) variables, which is
    // informational, not fatal.
    let out = bin()
        .arg("lint-cnf")
        .arg(cnot_spec_path())
        .output()
        .expect("run lassynth lint-cnf");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.starts_with("cnf: "), "report header: {text}");
    assert!(text.contains("component"), "component summary: {text}");
    assert!(
        !text.contains("contradictory-root-units") && !text.contains("empty-clause"),
        "no fatal lints on a real encoding: {text}"
    );

    // Layered encoding: the activation chain must fully gate.
    let layered = bin()
        .arg("lint-cnf")
        .arg(cnot_spec_path())
        .args(["--lo", "2", "--hi", "4"])
        .output()
        .expect("run lassynth lint-cnf --lo --hi");
    assert!(layered.status.success());
    let text = String::from_utf8_lossy(&layered.stdout);
    assert!(
        !text.contains("ungated-activation"),
        "every activation literal gates a payload: {text}"
    );

    // Raw DIMACS with contradictory root units is fatal (exit 1).
    let dir = std::env::temp_dir().join(format!("lassynth-cli-lint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let bad = dir.join("contradict.cnf");
    std::fs::write(&bad, "p cnf 2 3\n1 0\n-1 0\n1 2 0\n").expect("write cnf");
    let fatal = bin()
        .arg("lint-cnf")
        .arg(&bad)
        .output()
        .expect("run lassynth lint-cnf on a contradictory CNF");
    assert_eq!(fatal.status.code(), Some(1), "fatal lints exit 1");
    let text = String::from_utf8_lossy(&fatal.stdout);
    assert!(text.contains("contradictory-root-units"), "{text}");

    // A clean DIMACS file passes silently.
    let good = dir.join("clean.cnf");
    std::fs::write(&good, "p cnf 2 2\n1 2 0\n-1 2 0\n").expect("write cnf");
    let clean = bin()
        .arg("lint-cnf")
        .arg(&good)
        .output()
        .expect("run lassynth lint-cnf on a clean CNF");
    assert!(clean.status.success());
    assert!(
        String::from_utf8_lossy(&clean.stdout).contains("clean: no encoder lints fired"),
        "clean verdict printed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--audit-cnf` prints the encoder-lint report before solving and does
/// not change the verdict.
#[test]
fn audit_cnf_flag_reports_before_solving() {
    let out = bin()
        .arg("depth")
        .arg(cnot_spec_path())
        .args(["--lo", "2", "--hi", "4", "--start", "3", "--audit-cnf"])
        .output()
        .expect("run lassynth depth --audit-cnf");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.starts_with("cnf: "), "lint report leads: {text}");
    assert!(
        text.contains("optimal depth: 3"),
        "verdict unchanged: {text}"
    );
}

/// The certification surface end to end: `depth --certify` marks its
/// UNSAT probe as proof-checked, `synth --certify --drat` writes a DRAT
/// file that `check-proof` accepts against the `dimacs` output, and a
/// corrupted proof is rejected.
#[test]
fn certify_and_check_proof_round_trip() {
    let dir = std::env::temp_dir().join(format!("lassynth-cli-certify-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    let depth = bin()
        .arg("depth")
        .arg(cnot_spec_path())
        .args(["--lo", "2", "--hi", "4", "--start", "3", "--certify"])
        .output()
        .expect("run lassynth depth --certify");
    assert!(
        depth.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&depth.stderr)
    );
    let text = String::from_utf8_lossy(&depth.stdout).to_string();
    assert!(text.contains("optimal depth: 3"), "{text}");
    assert!(
        text.contains("UNSAT [proof checked]"),
        "the UNSAT probe carries the certification marker: {text}"
    );

    // An unsatisfiable CNOT variant: forbid both interior columns so
    // the qubits can never interact (same construction as the
    // `impossible_spec_is_unsat` unit test).
    let spec = std::fs::read_to_string(cnot_spec_path())
        .expect("read cnot spec")
        .replace("\"name\": \"cnot\"", "\"name\": \"cnot-unsat\"")
        .replace(
            "\"forbidden_cubes\": [[0, 0, 0], [1, 1, 0]]",
            "\"forbidden_cubes\": [[0,0,0],[0,0,1],[0,0,2],[1,1,0],[1,1,1],[1,1,2]]",
        );
    assert!(spec.contains("cnot-unsat"), "spec rewrite applied");
    let spec_path = dir.join("cnot_unsat.json");
    std::fs::write(&spec_path, spec).expect("write spec");

    let cnf = bin()
        .arg("dimacs")
        .arg(&spec_path)
        .output()
        .expect("run lassynth dimacs");
    assert!(cnf.status.success());
    let cnf_path = dir.join("cnot_unsat.cnf");
    std::fs::write(&cnf_path, &cnf.stdout).expect("write cnf");

    for drat_name in ["proof.drat", "proof.bdrat"] {
        let drat_path = dir.join(drat_name);
        let synth = bin()
            .arg("synth")
            .arg(&spec_path)
            .arg("--certify")
            .arg("--drat")
            .arg(&drat_path)
            .output()
            .expect("run lassynth synth --certify --drat");
        // UNSAT exits 1 by design; the proof must still be written and
        // the verdict marked as checked.
        assert_eq!(synth.status.code(), Some(1), "UNSAT verdict exits 1");
        let text = String::from_utf8_lossy(&synth.stdout).to_string();
        assert!(text.contains("UNSAT (DRAT proof checked)"), "{text}");
        assert!(drat_path.exists(), "wrote {}", drat_path.display());

        let check = bin()
            .arg("check-proof")
            .arg(&cnf_path)
            .arg(&drat_path)
            .output()
            .expect("run lassynth check-proof");
        assert!(
            check.status.success(),
            "{drat_name}: {}",
            String::from_utf8_lossy(&check.stdout)
        );
        assert!(
            String::from_utf8_lossy(&check.stdout).contains("PROOF OK"),
            "{drat_name} accepted"
        );
    }

    // A deletion of a clause that was never added cannot check: the
    // checker's deletions are strict.
    let bad_path = dir.join("bad.drat");
    std::fs::write(&bad_path, "d 99 0\n").expect("write bad drat");
    let check = bin()
        .arg("check-proof")
        .arg(&cnf_path)
        .arg(&bad_path)
        .output()
        .expect("run lassynth check-proof on a corrupt proof");
    assert_eq!(check.status.code(), Some(1), "corrupt proof exits 1");
    assert!(
        String::from_utf8_lossy(&check.stdout).contains("PROOF REJECTED"),
        "rejection reported"
    );

    // `--drat` without `--certify` (or with a portfolio) is a usage
    // error before any solving.
    let out = bin()
        .arg("synth")
        .arg(&spec_path)
        .arg("--drat")
        .arg(dir.join("x.drat"))
        .output()
        .expect("run lassynth synth --drat without --certify");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .arg("synth")
        .arg(&spec_path)
        .args(["--certify", "--seeds", "2", "--drat"])
        .arg(dir.join("x.drat"))
        .output()
        .expect("run lassynth synth --drat with --seeds");
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The resource-governor flags: malformed values and `--varisat`
/// combinations are usage errors before any solving; valid values are
/// accepted and `--stats` reports the per-axis exhaustion counters.
#[test]
fn governor_flags_validate_and_report() {
    for bad in [
        ["--timeout", "0"],
        ["--timeout", "soon"],
        ["--timeout", "-3"],
        ["--max-memory", "0"],
        ["--max-memory", "lots"],
    ] {
        for cmd in ["synth", "depth"] {
            let out = bin()
                .arg(cmd)
                .arg(cnot_spec_path())
                .args(bad)
                .output()
                .expect("run lassynth with a bad governor flag");
            assert_eq!(out.status.code(), Some(2), "{cmd} {bad:?} must exit 2");
        }
    }
    for bad in [["--deadline", "0"], ["--deadline", "never"]] {
        let out = bin()
            .arg("depth")
            .arg(cnot_spec_path())
            .args(bad)
            .output()
            .expect("run lassynth depth with a bad deadline");
        assert_eq!(out.status.code(), Some(2), "depth {bad:?} must exit 2");
    }

    // The varisat shim cannot honour the governor: combining them is a
    // usage error (and so is `--varisat` itself in a build without the
    // feature — exit 2 either way).
    for conflicting in [
        vec!["synth", "--timeout", "5", "--varisat"],
        vec!["synth", "--max-memory", "64", "--varisat"],
        vec!["depth", "--deadline", "5", "--varisat"],
    ] {
        let out = bin()
            .arg(conflicting[0])
            .arg(cnot_spec_path())
            .args(&conflicting[1..])
            .output()
            .expect("run lassynth with governor + varisat");
        assert_eq!(out.status.code(), Some(2), "{conflicting:?} must exit 2");
    }

    // Generous limits leave the verdict alone and surface the counters.
    let dir = std::env::temp_dir().join(format!("lassynth-cli-governor-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = bin()
        .arg("synth")
        .arg(cnot_spec_path())
        .arg("--out")
        .arg(&dir)
        .args(["--timeout", "600", "--max-memory", "512", "--stats"])
        .output()
        .expect("run lassynth synth with a generous governor");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("SAT"), "{text}");
    assert!(
        text.contains("exhausted_conflicts=0") && text.contains("exhausted_deadline=0"),
        "--stats reports the exhaustion counters: {text}"
    );
    assert!(
        !text.contains("gave up on:"),
        "a resolved solve names no exhaustion reason: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A deterministically injected arena-OOM (`LASSYNTH_FAULT`) exhausts
/// the first depth probe: the search reports the anytime window —
/// certified lower bound plus best-known SAT depth — instead of
/// erroring out.
#[test]
fn depth_reports_anytime_window_when_exhausted() {
    let out = bin()
        .arg("depth")
        .arg(cnot_spec_path())
        .args(["--lo", "2", "--hi", "4", "--start", "3"])
        .env("LASSYNTH_FAULT", "arena-oom@0")
        .output()
        .expect("run lassynth depth under an injected arena-OOM");
    assert_eq!(
        out.status.code(),
        Some(1),
        "no SAT depth in hand exits 1: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("UNKNOWN [memory ceiling]"),
        "the exhausted probe names its axis: {text}"
    );
    assert!(
        text.contains("search stopped early (memory ceiling)"),
        "the search explains why it gave up: {text}"
    );
    assert!(
        text.contains("anytime window: certified lower bound 2"),
        "the anytime window is reported: {text}"
    );
}

#[test]
fn usage_errors_exit_nonzero() {
    let out = bin().output().expect("run lassynth");
    assert_eq!(
        out.status.code(),
        Some(2),
        "no-args prints usage and exits 2"
    );
    let out = bin().arg("synth").output().expect("run lassynth synth");
    assert_eq!(out.status.code(), Some(2), "missing spec path exits 2");
    let out = bin()
        .arg("synth")
        .arg("/nonexistent/spec.json")
        .output()
        .expect("run lassynth synth");
    assert_eq!(out.status.code(), Some(1), "unreadable spec exits 1");
}
