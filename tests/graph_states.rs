//! Cross-crate integration on the graph-state workload: synthesis beats
//! the baseline, designs verify, and the solver backends agree.

use lassynth::synth::{optimize, SynthOptions, Synthesizer};
use lassynth::workloads::baseline::compile_graph_state;
use lassynth::workloads::graphs::{benchmark_set, fig14_graph, Graph};
use lassynth::workloads::specs::graph_state_spec;

#[test]
fn fig14_instance_halves_the_volume() {
    let g = fig14_graph();
    let base = compile_graph_state(&g);
    assert_eq!(base.volume, 64, "paper's baseline volume for Fig. 14");
    let design = Synthesizer::new(graph_state_spec(&g, 2))
        .unwrap()
        .run()
        .unwrap()
        .expect_sat();
    assert!(design.verified());
    let volume = 8 * 2 * 2;
    assert!(volume * 2 <= base.volume);
}

#[test]
fn small_graphs_all_synthesize_and_verify() {
    for g in [
        Graph::path(4),
        Graph::cycle(4),
        Graph::star(4),
        Graph::complete(3),
    ] {
        let search =
            optimize::find_min_depth(&graph_state_spec(&g, 2), 1, 4, 2, &SynthOptions::default())
                .unwrap();
        let design = search.best.expect("satisfiable depth in range");
        assert!(design.verified());
        // LaSsynth footprint is half the baseline's.
        let base = compile_graph_state(&g);
        let volume = 2 * g.num_vertices() * design.spec().max_k;
        assert!(volume <= base.volume, "{volume} > {}", base.volume);
    }
}

#[test]
fn backends_agree_on_depth_one_feasibility() {
    // Depth 1 leaves no room for any merge: graphs with edges need ≥ 2.
    let g = Graph::path(3);
    let spec = graph_state_spec(&g, 1);
    let mut ours = Synthesizer::new(spec.clone()).unwrap();
    let mut varisat = Synthesizer::new(spec).unwrap().with_options(SynthOptions {
        backend: lassynth::synth::BackendChoice::Varisat,
        ..Default::default()
    });
    let a = ours.run().unwrap().is_unsat();
    let b = varisat.run().unwrap().is_unsat();
    assert_eq!(a, b);
    assert!(a, "a path graph state cannot be made without merging");
}

#[test]
fn bare_plus_initializations_are_inexpressible() {
    // The formulation has no pipe caps: degree-1 cubes are forbidden
    // (paper Fig. 9e) and initialization bases arise only at junctions,
    // so an *isolated* vertex (a bare |+⟩-to-port column) is UNSAT at
    // any depth. The paper's benchmark only uses connected graphs; a
    // connected pair synthesizes fine at depth 2.
    let isolated = Graph::new(1);
    for depth in [1, 2, 3] {
        let r = Synthesizer::new(graph_state_spec(&isolated, depth))
            .unwrap()
            .run()
            .unwrap();
        assert!(r.is_unsat(), "depth {depth}");
    }
    let mut pair = Graph::new(2);
    pair.add_edge(0, 1);
    let r = Synthesizer::new(graph_state_spec(&pair, 2))
        .unwrap()
        .run()
        .unwrap();
    assert!(r.is_sat());
}

#[test]
fn benchmark_set_specs_are_all_valid() {
    for g in benchmark_set(8, 101, 2024) {
        let spec = graph_state_spec(&g, 3);
        assert!(spec.validate().is_ok());
    }
}
