//! Integration of the `.lasre` output format with the synthesizer:
//! solve → serialize → reload → re-validate → re-verify.

use lassynth::lasre;
use lassynth::synth::{verify, Synthesizer};
use lassynth::workloads::graphs::fig14_graph;
use lassynth::workloads::specs::graph_state_spec;

#[test]
fn solved_designs_roundtrip_through_lasre() {
    let design = Synthesizer::new(lasre::fixtures::cnot_spec())
        .unwrap()
        .run()
        .unwrap()
        .expect_sat();
    let text = lasre::to_lasre(&design);
    let reloaded = lasre::from_lasre(&text).unwrap();
    assert_eq!(reloaded.spec(), design.spec());
    assert_eq!(reloaded.values(), design.values());
    assert_eq!(reloaded.domain_walls(), design.domain_walls());
    // The reloaded design independently re-validates and re-verifies.
    assert!(lasre::check_validity(&reloaded).is_empty());
    assert!(verify::verify(&reloaded).is_ok());
}

#[test]
fn lasre_of_graph_state_design_reverifies() {
    let spec = graph_state_spec(&fig14_graph(), 2);
    let design = Synthesizer::new(spec).unwrap().run().unwrap().expect_sat();
    let reloaded = lasre::from_lasre(&lasre::to_lasre(&design)).unwrap();
    assert!(verify::verify(&reloaded).is_ok());
}

#[test]
fn tampered_lasre_fails_verification() {
    // Flip a structural bit in the serialized design: the document
    // still parses, but validity/verification catches the damage —
    // exactly how the paper caught the buggy published majority gate.
    let design = Synthesizer::new(lasre::fixtures::cnot_spec())
        .unwrap()
        .run()
        .unwrap()
        .expect_sat();
    // Find a '1' in the values string corresponding to a pipe and clear it.
    let text = lasre::to_lasre(&design);
    let marker = "\"values\": \"";
    let start = text.find(marker).unwrap() + marker.len();
    let one = text[start..].find('1').unwrap() + start;
    let mut tampered = text.clone();
    tampered.replace_range(one..one + 1, "0");
    let reloaded = lasre::from_lasre(&tampered).unwrap();
    let invalid =
        !lasre::check_validity(&reloaded).is_empty() || verify::verify(&reloaded).is_err();
    assert!(
        invalid,
        "tampering must be caught by validity or flow checks"
    );
}
