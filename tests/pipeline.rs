//! End-to-end integration: JSON spec → encode → solve → decode →
//! validity → ZX verification → visualization, across all crates.

use lassynth::synth::{optimize, verify, SynthOptions, SynthResult, Synthesizer};
use lassynth::{lasre, sat, viz};

#[test]
fn cnot_full_pipeline_from_json() {
    let spec: lasre::LasSpec =
        serde_json::from_str(include_str!("../examples/specs/cnot.json")).unwrap();
    assert_eq!(spec, lasre::fixtures::cnot_spec());
    let mut synth = Synthesizer::new(spec).unwrap();
    let design = synth.run().unwrap().expect_sat();
    // Validity re-check (independent of the encoder).
    assert!(lasre::check_validity(&design).is_empty());
    // ZX flows contain all four CNOT stabilizers.
    let flows = verify::verify(&design).unwrap();
    assert_eq!(flows.rank(), 4);
    // Visualization round trip.
    let scene = viz::Scene::from_design(&design, viz::SceneOptions::default());
    let gltf = viz::gltf::to_gltf(&scene);
    assert!(serde_json::from_str::<serde_json::Value>(&gltf).is_ok());
    // ASCII rendering mentions every layer.
    let slices = lasre::slices::render(&design);
    assert!(slices.contains("k=2"));
}

#[test]
fn dimacs_export_solves_identically() {
    // The paper's portability argument: the simplified instance can be
    // exported as DIMACS and solved by any solver.
    let spec = lasre::fixtures::cnot_spec();
    let synth = Synthesizer::new(spec).unwrap();
    let text = sat::dimacs::to_string(synth.cnf());
    let reparsed = sat::dimacs::parse_str(&text).unwrap();
    use sat::Backend;
    let ours = sat::CdclSolver::default().solve(&reparsed);
    let theirs = sat::VarisatBackend.solve(&reparsed);
    assert!(ours.is_sat());
    assert!(theirs.is_sat());
}

#[test]
fn paper_fixture_round_trips_through_assumptions() {
    // The hand-built Fig. 8/10 CNOT both validates and verifies.
    let mut design = lasre::fixtures::cnot_design();
    assert!(lasre::check_validity(&design).is_empty());
    design.infer_k_colors();
    assert!(verify::verify(&design).is_ok());
}

#[test]
fn depth_search_and_port_orders_compose() {
    let spec = lasre::fixtures::cnot_spec();
    let search = optimize::find_min_depth(&spec, 2, 4, 3, &SynthOptions::default()).unwrap();
    assert_eq!(search.best_depth(), Some(3));
    // Swapping control and target still synthesizes (CNOT reversed is
    // still a valid Clifford with the permuted flows).
    let perms = vec![vec![0, 1, 2, 3], vec![1, 0, 3, 2]];
    let found = optimize::explore_port_orders(&spec, &perms, &SynthOptions::default()).unwrap();
    assert!(found.is_some());
}

#[test]
fn unknown_surfaced_not_panicked() {
    let mut synth = Synthesizer::new(lasre::fixtures::cnot_spec())
        .unwrap()
        .with_options(SynthOptions::default().with_time_limit(std::time::Duration::ZERO));
    match synth.run().unwrap() {
        SynthResult::Unknown | SynthResult::Sat(_) => {}
        SynthResult::Unsat => panic!("zero budget must not prove unsat"),
    }
}
