//! Property-based integration tests across the workspace.

use lassynth::synth::Synthesizer;
use lassynth::workloads::graphs::Graph;
use lassynth::workloads::specs::graph_state_spec;
use lassynth::{pauli, sat, zx};
use proptest::prelude::*;

/// Arbitrary small connected graph.
fn arb_graph(n: usize) -> impl Strategy<Value = Graph> {
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
        .collect();
    proptest::collection::vec(any::<bool>(), pairs.len()).prop_map(move |mask| {
        let mut g = Graph::new(n);
        // Spanning path keeps it connected; extra edges from the mask.
        for v in 1..n {
            g.add_edge(v - 1, v);
        }
        for (on, &(a, b)) in mask.iter().zip(&pairs) {
            if *on && !g.has_edge(a, b) {
                g.add_edge(a, b);
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every synthesized graph-state design passes the independent
    /// validity checker and ZX verification (the synthesizer verifies
    /// internally; it must never return an unverifiable design).
    #[test]
    fn synthesized_designs_always_verify(g in arb_graph(4)) {
        let spec = graph_state_spec(&g, 2);
        let result = Synthesizer::new(spec).unwrap().run().unwrap();
        if let lassynth::synth::SynthResult::Sat(design) = result {
            prop_assert!(design.verified());
            prop_assert!(lassynth::lasre::check_validity(&design).is_empty());
        }
    }

    /// Graph-state stabilizers are always a valid commuting, full-rank
    /// specification.
    #[test]
    fn graph_state_specs_validate(g in arb_graph(6)) {
        let stabs = g.stabilizers();
        prop_assert!(pauli::all_commute(&stabs));
        prop_assert_eq!(pauli::independent_count(&stabs), 6);
        prop_assert!(graph_state_spec(&g, 3).validate().is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Our CDCL and varisat agree on random 3-SAT instances (beyond the
    /// unit tests' sizes).
    #[test]
    fn solvers_agree(seed in 0u64..500) {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        use sat::Backend;
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 20;
        let m = rng.random_range(40..100);
        let mut cnf = sat::Cnf::new(n);
        for _ in 0..m {
            let mut clause = Vec::new();
            for _ in 0..3 {
                clause.push(sat::Lit::new(
                    sat::Var(rng.random_range(0..n as u32)),
                    rng.random_bool(0.5),
                ));
            }
            cnf.add_clause(clause);
        }
        let ours = sat::CdclSolver::default().solve(&cnf);
        let theirs = sat::VarisatBackend.solve(&cnf);
        prop_assert_eq!(ours.is_sat(), theirs.is_sat());
        if let sat::SolveOutcome::Sat(model) = ours {
            prop_assert!(cnf.eval(&model));
        }
    }

    /// ZX rewriting (fusion + identity removal) never changes the flow
    /// group of random spider chains.
    #[test]
    fn zx_simplify_preserves_flows(
        kinds in proptest::collection::vec((any::<bool>(), 0u8..4), 1..6),
        h_mask in any::<u8>(),
    ) {
        let mut d = zx::Diagram::new();
        let b_in = d.add_boundary();
        let b_out = d.add_boundary();
        let mut prev = b_in;
        for (i, &(is_x, phase)) in kinds.iter().enumerate() {
            let kind = if is_x { zx::SpiderKind::X } else { zx::SpiderKind::Z };
            let s = d.add_spider(kind, phase);
            if h_mask >> (i % 8) & 1 == 1 {
                d.add_h_edge(prev, s);
            } else {
                d.add_edge(prev, s);
            }
            prev = s;
        }
        d.add_edge(prev, b_out);
        let before = d.stabilizer_flows().unwrap();
        d.simplify();
        let after = d.stabilizer_flows().unwrap();
        for g in before.generators() {
            prop_assert!(after.contains_letters(g));
        }
        for g in after.generators() {
            prop_assert!(before.contains_letters(g));
        }
    }
}
