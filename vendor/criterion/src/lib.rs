//! Minimal vendored stand-in for the `criterion` crate (offline build).
//!
//! Supports the `criterion_group!`/`criterion_main!` bench layout with
//! groups, `sample_size` and `bench_function`. Each benchmark runs
//! `sample_size` timed iterations (after one warm-up) and prints
//! mean/min wall-clock times — honest measurements, none of criterion's
//! statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_bench(&name.into(), 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
    };
    // One warm-up round, unrecorded.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..samples {
        f(&mut bencher);
    }
    let total: Duration = bencher.samples.iter().sum();
    let n = bencher.samples.len().max(1) as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {name}: mean {:?}, min {:?} ({} samples)",
        total / n,
        min,
        n
    );
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs and times one iteration of the benchmark body.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        black_box(out);
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
