//! Minimal vendored stand-in for the `crossbeam` crate (offline build).
//!
//! Only [`thread::scope`] is provided, implemented on top of
//! `std::thread::scope` (stable since 1.63, which makes crossbeam's
//! scoped threads mostly redundant). API differences kept:
//! crossbeam's `scope` returns a `Result` and its spawn closures take a
//! scope argument (callers here ignore it with `|_|`).

#![forbid(unsafe_code)]

pub mod thread {
    use std::thread::Result;

    /// Handle for spawning scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned handle to one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (Err = panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument exists for
        /// crossbeam signature compatibility and carries no data.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope whose spawned threads all join before
    /// `scope` returns. Unlike crossbeam, a panic in an unjoined child
    /// propagates as a panic rather than an `Err` (the difference is
    /// immaterial to callers that `.expect()` the result).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }
}
