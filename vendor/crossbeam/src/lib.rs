//! Minimal vendored stand-in for the `crossbeam` crate (offline build).
//!
//! Two pieces are provided:
//!
//! * [`thread::scope`], implemented on top of `std::thread::scope`
//!   (stable since 1.63, which makes crossbeam's scoped threads mostly
//!   redundant). API differences kept: crossbeam's `scope` returns a
//!   `Result` and its spawn closures take a scope argument (callers
//!   here ignore it with `|_|`).
//! * [`queue::ArrayQueue`], the bounded MPMC queue. The real crate's
//!   lock-free ring buffer needs `unsafe`; this stand-in trades the
//!   lock-freedom for a mutex around a `VecDeque` while keeping the
//!   exact `push`/`pop` semantics (bounded capacity, FIFO order,
//!   rejected element handed back on a full queue). Callers here are
//!   clause-exchange buffers drained at restart boundaries, far off
//!   any hot path.

#![forbid(unsafe_code)]

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A bounded multi-producer multi-consumer FIFO queue.
    ///
    /// ```
    /// use crossbeam::queue::ArrayQueue;
    /// let q = ArrayQueue::new(2);
    /// assert!(q.push(1).is_ok());
    /// assert!(q.push(2).is_ok());
    /// assert_eq!(q.push(3), Err(3)); // full: element handed back
    /// assert_eq!(q.pop(), Some(1));
    /// ```
    pub struct ArrayQueue<T> {
        items: Mutex<VecDeque<T>>,
        capacity: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `capacity` elements.
        ///
        /// # Panics
        ///
        /// Panics if `capacity` is zero (as the real crate does).
        pub fn new(capacity: usize) -> ArrayQueue<T> {
            assert!(capacity > 0, "capacity must be non-zero");
            ArrayQueue {
                items: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // Mutex poisoning cannot leave the VecDeque in a torn state
            // (every critical section is a single VecDeque call), so a
            // panicked producer does not invalidate the queue.
            match self.items.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        /// Appends `value`, or hands it back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut items = self.lock();
            if items.len() >= self.capacity {
                return Err(value);
            }
            items.push_back(value);
            Ok(())
        }

        /// Removes and returns the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of elements currently queued.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// Whether the queue is at capacity.
        pub fn is_full(&self) -> bool {
            self.len() >= self.capacity
        }

        /// The fixed capacity the queue was created with.
        pub fn capacity(&self) -> usize {
            self.capacity
        }
    }

    impl<T> std::fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ArrayQueue")
                .field("len", &self.len())
                .field("capacity", &self.capacity)
                .finish()
        }
    }
}

pub mod thread {
    use std::thread::Result;

    /// Handle for spawning scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned handle to one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (Err = panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument exists for
        /// crossbeam signature compatibility and carries no data.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope whose spawned threads all join before
    /// `scope` returns. Unlike crossbeam, a panic in an unjoined child
    /// propagates as a panic rather than an `Err` (the difference is
    /// immaterial to callers that `.expect()` the result).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn array_queue_fifo_and_bounded() {
        let q = super::queue::ArrayQueue::new(3);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 3);
        for i in 0..3 {
            assert!(q.push(i).is_ok());
        }
        assert!(q.is_full());
        assert_eq!(q.push(99), Err(99));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.len(), 2);
        assert!(q.push(3).is_ok());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn array_queue_shared_across_threads() {
        let q = std::sync::Arc::new(super::queue::ArrayQueue::new(64));
        let total: usize = super::thread::scope(|scope| {
            let producers: Vec<_> = (0..4)
                .map(|t| {
                    let q = q.clone();
                    scope.spawn(move |_| {
                        for i in 0..16 {
                            q.push(t * 16 + i).unwrap();
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            std::iter::from_fn(|| q.pop()).count()
        })
        .unwrap();
        assert_eq!(total, 64);
    }

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }
}
