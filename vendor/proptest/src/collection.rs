//! Collection strategies.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::RngExt;
use std::ops::Range;

/// A size specification: exact or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.random_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a vector strategy: `vec(element, len)` or `vec(element, lo..hi)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
