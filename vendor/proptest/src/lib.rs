//! Minimal vendored stand-in for the `proptest` crate (offline build).
//!
//! Implements the subset this workspace's property tests use:
//! range/tuple/`any`/`Just` strategies, `prop_map`, `prop_filter_map`,
//! `prop_oneof!`, `proptest::collection::vec`, the `proptest!` test
//! macro and `prop_assert*` macros. Cases are generated from a
//! deterministic per-test seed. There is **no shrinking**: a failure
//! reports the case number and message instead of a minimized input.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;

pub use strategy::{any, Any, Just, Strategy, Union};

/// Re-exports used by the macros.
#[doc(hidden)]
pub mod reexport {
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;
}

/// The RNG strategies draw from.
pub type TestRng = rand::rngs::SmallRng;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The effective case count: the `PROPTEST_CASES` environment variable,
/// when set to a number, overrides whatever the test configured. (The
/// real `proptest` only honors the variable for defaulted configs; this
/// shim lets CI scale *every* property test — including those with an
/// explicit `with_cases` — without patching sources.)
#[doc(hidden)]
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(configured)
}

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr); $( $(#[$attr:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$attr])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Deterministic per-test seed (name-dependent).
                let mut seed: u64 = 0xC0FFEE;
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(31).wrapping_add(b as u64);
                }
                let mut rng = <$crate::reexport::SmallRng as $crate::reexport::SeedableRng>::seed_from_u64(seed);
                let cases = $crate::resolve_cases(config.cases);
                for case in 0..cases {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {}): {}",
                            stringify!($name), case + 1, cases, seed, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts within a `proptest!` body (returns an error, not a panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Weighted-free choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}
