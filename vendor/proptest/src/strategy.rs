//! Value-generation strategies (no shrink trees).

use crate::TestRng;
use rand::RngExt;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Transform-and-reject: regenerates until `f` returns `Some`.
    fn prop_filter_map<T, F: Fn(Self::Value) -> Option<T>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Keeps only values passing the predicate (regenerates otherwise).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy (for heterogeneous `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({:?}) rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on empty arm lists.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty,)*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy! { i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64, }

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+),)*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty,)*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    use rand::Rng;
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_arbitrary_int! { i8, i16, i32, i64, u8, u16, u32, u64, usize, }

/// The canonical strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
