//! Minimal vendored stand-in for the `rand` crate (offline build).
//!
//! Provides seeded ([`rngs::SmallRng`], xoshiro256++) and ambient
//! ([`rng`]) generators, the [`Rng`]/[`RngExt`] traits with
//! `random_bool`/`random_range`, and [`seq::SliceRandom::shuffle`] —
//! exactly the surface the solver, tableau and workloads use.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type with a value range that can be sampled uniformly.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty,)*) => {
        $(
            impl SampleUniform for $ty {
                fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty sample range");
                    let span = (hi as i128 - lo as i128) as u128;
                    // Multiply-shift bounded sampling; the tiny modulo
                    // bias is irrelevant for heuristics and tests.
                    let r = rng.next_u64() as u128;
                    (lo as i128 + (r * span >> 64) as i128) as $ty
                }
            }
        )*
    };
}

impl_sample_uniform_int! { i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, }

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample(rng, lo as f64, hi as f64) as f32
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self, 0.0, 1.0) < p
    }

    /// Uniform sample from a half-open range.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A type constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion of the seed, as rand does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The ambient per-thread generator behind [`crate::rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng {
        inner: SmallRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> ThreadRng {
            use std::time::{SystemTime, UNIX_EPOCH};
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0xDEADBEEF);
            let tid = {
                use std::collections::hash_map::DefaultHasher;
                use std::hash::{Hash, Hasher};
                let mut h = DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                h.finish()
            };
            ThreadRng {
                inner: SmallRng::seed_from_u64(nanos ^ tid.rotate_left(32)),
            }
        }
    }

    impl Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// A fresh ambient generator (non-deterministically seeded).
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.random_range(0..10u32);
            assert_eq!(x, b.random_range(0..10u32));
            assert!(x < 10);
            let f = a.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            b.random_range(0.0..1.0f64);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        use super::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
