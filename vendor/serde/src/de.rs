//! Deserialization half of the data model.
//!
//! Instead of serde's visitor machinery, deserializers here hand over
//! an owned [`Content`] tree; `Deserialize` impls pattern-match on it.

use std::fmt::Display;
use std::marker::PhantomData;

/// An owned, format-independent value tree (serde's data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Human-readable kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "a number",
            Content::Str(_) => "a string",
            Content::Seq(_) => "a sequence",
            Content::Map(_) => "a map",
        }
    }
}

/// Error trait for deserializers.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data-format backend handing over parsed content.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Consumes the deserializer, yielding its content tree.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A type that can be reconstructed from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Reads `Self` from the deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A [`Deserializer`] over an already-parsed [`Content`] tree.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;
    fn take_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

fn unexpected<E: Error>(expected: &str, got: &Content) -> E {
    E::custom(format_args!(
        "invalid type: expected {expected}, found {got}",
        got = got.kind()
    ))
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(unexpected("a boolean", &other)),
        }
    }
}

macro_rules! impl_deserialize_int {
    ($($ty:ty,)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    let content = deserializer.take_content()?;
                    let out = match content {
                        Content::I64(v) => <$ty>::try_from(v).ok(),
                        Content::U64(v) => <$ty>::try_from(v).ok(),
                        ref other => return Err(unexpected("an integer", other)),
                    };
                    out.ok_or_else(|| {
                        D::Error::custom(format_args!(
                            "integer out of range for {}", stringify!($ty)
                        ))
                    })
                }
            }
        )*
    };
}

impl_deserialize_int! { i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, }

macro_rules! impl_deserialize_float {
    ($($ty:ty,)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    match deserializer.take_content()? {
                        Content::I64(v) => Ok(v as $ty),
                        Content::U64(v) => Ok(v as $ty),
                        Content::F64(v) => Ok(v as $ty),
                        other => Err(unexpected("a number", &other)),
                    }
                }
            }
        )*
    };
}

impl_deserialize_float! { f32, f64, }

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Str(s) => Ok(s),
            other => Err(unexpected("a string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(D::Error::custom("expected a single character")),
                }
            }
            other => Err(unexpected("a character", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Null => Ok(None),
            other => T::deserialize(ContentDeserializer::<D::Error>::new(other)).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|c| T::deserialize(ContentDeserializer::<D::Error>::new(c)))
                .collect(),
            other => Err(unexpected("a sequence", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(deserializer)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            D::Error::custom(format_args!("expected an array of length {N}, found {len}"))
        })
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident),+) : $len:expr,)*) => {
        $(
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                    match deserializer.take_content()? {
                        Content::Seq(items) => {
                            if items.len() != $len {
                                return Err(__D::Error::custom(format_args!(
                                    "expected a tuple of length {}, found {}",
                                    $len,
                                    items.len()
                                )));
                            }
                            let mut iter = items.into_iter();
                            Ok(($(
                                $name::deserialize(ContentDeserializer::<__D::Error>::new(
                                    iter.next().expect("length checked"),
                                ))?,
                            )+))
                        }
                        other => Err(unexpected("a sequence", &other)),
                    }
                }
            }
        )*
    };
}

impl_deserialize_tuple! {
    (A): 1,
    (A, B): 2,
    (A, B, C): 3,
    (A, B, C, D): 4,
    (A, B, C, D, E): 5,
    (A, B, C, D, E, F): 6,
}

// ---------------------------------------------------------------------------
// Helpers used by the derive macro's generated code.

/// Unwraps a map content for struct deserialization.
pub fn content_into_map<E: Error>(
    content: Content,
    type_name: &'static str,
) -> Result<Vec<(String, Content)>, E> {
    match content {
        Content::Map(entries) => Ok(entries),
        other => Err(E::custom(format_args!(
            "invalid type: expected a map for struct {type_name}, found {}",
            other.kind()
        ))),
    }
}

/// Extracts and deserializes a required struct field.
pub fn from_map_field<'de, T: Deserialize<'de>, E: Error>(
    map: &mut Vec<(String, Content)>,
    field: &'static str,
) -> Result<T, E> {
    match map.iter().position(|(k, _)| k == field) {
        Some(i) => {
            let (_, value) = map.remove(i);
            T::deserialize(ContentDeserializer::<E>::new(value))
        }
        None => Err(E::custom(format_args!("missing field `{field}`"))),
    }
}

/// Extracts a struct field, falling back to `default` when absent.
pub fn from_map_field_or<'de, T: Deserialize<'de>, E: Error>(
    map: &mut Vec<(String, Content)>,
    field: &'static str,
    default: impl FnOnce() -> T,
) -> Result<T, E> {
    match map.iter().position(|(k, _)| k == field) {
        Some(i) => {
            let (_, value) = map.remove(i);
            T::deserialize(ContentDeserializer::<E>::new(value))
        }
        None => Ok(default()),
    }
}
