//! Minimal vendored stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the *exact API subset* of serde it uses: the
//! [`Serialize`]/[`Deserialize`] traits, struct/seq/primitive support,
//! and a derive macro for plain named-field structs (including
//! `#[serde(default)]` and `#[serde(default = "path")]`).
//!
//! Deserialization goes through an owned [`de::Content`] tree instead
//! of serde's zero-copy visitor machinery: simpler, and plenty for the
//! JSON documents this project reads (specs and `.lasre` files are
//! small compared to the SAT solving around them).

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
