//! Serialization half of the data model.

use std::fmt::Display;

/// Error trait for serializers.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Feeds `self` into the serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format backend (e.g. JSON).
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps with dynamic string keys.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Element-by-element sequence serialization.
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Entry-by-entry map serialization (string keys).
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_entry<T: Serialize + ?Sized>(
        &mut self,
        key: &str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Field-by-field struct serialization.
pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_int {
    ($($ty:ty => $method:ident as $as:ty,)*) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self as $as)
                }
            }
        )*
    };
}

impl_serialize_int! {
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<'a, S, T>(
    serializer: S,
    items: impl ExactSizeIterator<Item = &'a T>,
) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
{
    let mut seq = serializer.serialize_seq(Some(items.len()))?;
    for item in items {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+) : $len:expr,)*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut seq = serializer.serialize_seq(Some($len))?;
                    $(seq.serialize_element(&self.$idx)?;)+
                    seq.end()
                }
            }
        )*
    };
}

impl_serialize_tuple! {
    (A.0): 1,
    (A.0, B.1): 2,
    (A.0, B.1, C.2): 3,
    (A.0, B.1, C.2, D.3): 4,
    (A.0, B.1, C.2, D.3, E.4): 5,
    (A.0, B.1, C.2, D.3, E.4, F.5): 6,
}
