//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Supports exactly what this workspace derives on: non-generic structs
//! with named fields, plus the `#[serde(default)]` and
//! `#[serde(default = "path")]` field attributes. Anything else is a
//! compile error with a pointed message, so silent drift is impossible.
//!
//! No `syn`/`quote` (offline build): the struct is parsed directly from
//! the token stream and the impls are emitted as source text.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// `None` = required, `Some(None)` = `Default::default()`,
/// `Some(Some(path))` = `#[serde(default = "path")]`.
struct Field {
    name: String,
    default: Option<Option<String>>,
}

struct StructDef {
    name: String,
    fields: Vec<Field>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let mut body = String::new();
    body.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         let mut __state = ::serde::Serializer::serialize_struct(\
         __serializer, \"{name}\", {len}usize)?;\n",
        name = def.name,
        len = def.fields.len(),
    ));
    for field in &def.fields {
        body.push_str(&format!(
            "::serde::ser::SerializeStruct::serialize_field(\
             &mut __state, \"{f}\", &self.{f})?;\n",
            f = field.name,
        ));
    }
    body.push_str("::serde::ser::SerializeStruct::end(__state)\n}\n}\n");
    body.parse()
        .expect("serde_derive emitted invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let mut body = String::new();
    body.push_str(&format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         let __content = ::serde::de::Deserializer::take_content(__deserializer)?;\n\
         let mut __map = ::serde::de::content_into_map::<__D::Error>(__content, \"{name}\")?;\n\
         ::std::result::Result::Ok({name} {{\n",
        name = def.name,
    ));
    for field in &def.fields {
        match &field.default {
            None => body.push_str(&format!(
                "{f}: ::serde::de::from_map_field::<_, __D::Error>(&mut __map, \"{f}\")?,\n",
                f = field.name,
            )),
            Some(None) => body.push_str(&format!(
                "{f}: ::serde::de::from_map_field_or::<_, __D::Error>(\
                 &mut __map, \"{f}\", ::std::default::Default::default)?,\n",
                f = field.name,
            )),
            Some(Some(path)) => body.push_str(&format!(
                "{f}: ::serde::de::from_map_field_or::<_, __D::Error>(\
                 &mut __map, \"{f}\", {path})?,\n",
                f = field.name,
            )),
        }
    }
    body.push_str("})\n}\n}\n");
    body.parse()
        .expect("serde_derive emitted invalid Deserialize impl")
}

fn parse_struct(input: TokenStream) -> StructDef {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility, find `struct`.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _bracket = iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!("vendored serde_derive supports only structs with named fields")
            }
            Some(_) => {}
            None => panic!("vendored serde_derive: no `struct` found in input"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected struct name, got {other:?}"),
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "vendored serde_derive supports only non-generic structs with \
             named fields (struct {name}, got {other:?})"
        ),
    };
    StructDef {
        name,
        fields: parse_fields(body),
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        // Field attributes.
        let mut default = None;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    let group = match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                        other => panic!("vendored serde_derive: bad attribute: {other:?}"),
                    };
                    if let Some(d) = parse_serde_attr(group.stream()) {
                        default = Some(d);
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
        }
        // Field name and `:`.
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("vendored serde_derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("vendored serde_derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume tokens until a comma at angle-bracket
        // depth zero (parens/brackets are whole groups, so only `<`/`>`
        // need tracking).
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Parses the inside of one `#[...]` attribute; returns the default
/// spec if it is a `#[serde(...)]` attribute.
fn parse_serde_attr(stream: TokenStream) -> Option<Option<String>> {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None, // doc comments and other attrs
    }
    let args = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("vendored serde_derive: malformed #[serde] attribute: {other:?}"),
    };
    let mut iter = args.into_iter().peekable();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        other => panic!(
            "vendored serde_derive supports only #[serde(default)] and \
             #[serde(default = \"path\")], got {other:?}"
        ),
    }
    match iter.next() {
        None => Some(None),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
            let lit = match iter.next() {
                Some(TokenTree::Literal(l)) => l.to_string(),
                other => panic!("vendored serde_derive: bad #[serde(default = ...)]: {other:?}"),
            };
            let path = lit.trim_matches('"').to_string();
            Some(Some(path))
        }
        other => panic!("vendored serde_derive: bad #[serde(default ...)]: {other:?}"),
    }
}
