//! Minimal vendored stand-in for the `serde_json` crate.
//!
//! Offline build: implements the subset this workspace uses —
//! [`from_str`], [`to_string`], [`to_string_pretty`], [`Value`] with
//! indexing/accessors, and the [`json!`] macro. Object keys preserve
//! insertion order (like serde_json's `preserve_order` feature), which
//! keeps `.lasre` documents byte-stable across round trips.

#![forbid(unsafe_code)]

mod macros;
mod parse;
mod print;
mod value;

pub use value::{Number, Value};

use serde::de::{Content, ContentDeserializer};

/// Error raised while parsing or printing JSON.
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::fmt::Debug for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<'de, T: serde::Deserialize<'de>>(s: &'de str) -> Result<T, Error> {
    let content = parse::parse(s)?;
    T::deserialize(ContentDeserializer::<Error>::new(content))
}

/// Serializes a value into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] if the value's `Serialize` impl fails.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(value::ValueSerializer)
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value's `Serialize` impl fails.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    print::write_compact(&v, &mut out);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] if the value's `Serialize` impl fails.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    print::write_pretty(&v, &mut out, 0);
    Ok(out)
}

fn content_to_value(content: Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::I64(v) => Value::Number(if v < 0 {
            Number::NegInt(v)
        } else {
            Number::PosInt(v as u64)
        }),
        Content::U64(v) => Value::Number(Number::PosInt(v)),
        Content::F64(v) => Value::Number(Number::Float(v)),
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k, content_to_value(v)))
                .collect(),
        ),
    }
}
