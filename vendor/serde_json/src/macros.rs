//! The `json!` macro: a token-tree muncher in the style of the real
//! serde_json, covering the literal-key object / nested array grammar
//! this workspace uses.

/// Builds a [`crate::Value`] from JSON-ish syntax.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ----- array munching: accumulate elements in [$($elems:expr,)*]
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object munching: @object ident (key tokens) (input) (input copy)
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).into(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).into(), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ----- primary forms
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object(::std::vec::Vec::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::Value::from($other)
    };
}
