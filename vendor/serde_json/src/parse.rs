//! Recursive-descent JSON parser producing a `Content` tree.

use crate::Error;
use serde::de::Content;

pub(crate) fn parse(text: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_literal("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // parse_hex4 advanced past the digits; undo
                            // the generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8:
                    // it came from a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number characters");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(if v < 0 {
                    Content::I64(v)
                } else {
                    Content::U64(v as u64)
                });
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?} at byte {start}")))
    }
}
