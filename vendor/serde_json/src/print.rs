//! Compact and pretty JSON writers (serde_json-compatible formatting).

use crate::value::Value;
use std::fmt::Write;

pub(crate) fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(key, out);
                out.push_str(": ");
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
