//! The JSON value tree and its serde glue.

use crate::Error;
use serde::ser::{SerializeMap, SerializeSeq, SerializeStruct};
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A JSON number: integer (kept exact) or float.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            // `{:?}` keeps a trailing `.0` on integral floats, matching
            // serde_json's output for f64.
            Number::Float(v) => write!(f, "{v:?}"),
        }
    }
}

/// A parsed JSON document. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null` (also returned by out-of-range indexing).
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer payload, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Signed integer payload, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::NegInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object payload.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

macro_rules! from_unsigned {
    ($($ty:ty,)*) => {
        $(
            impl From<$ty> for Value {
                fn from(v: $ty) -> Value { Value::Number(Number::PosInt(v as u64)) }
            }
        )*
    };
}

macro_rules! from_signed {
    ($($ty:ty,)*) => {
        $(
            impl From<$ty> for Value {
                fn from(v: $ty) -> Value {
                    let v = v as i64;
                    Value::Number(if v < 0 {
                        Number::NegInt(v)
                    } else {
                        Number::PosInt(v as u64)
                    })
                }
            }
        )*
    };
}

from_unsigned! { u8, u16, u32, u64, usize, }
from_signed! { i8, i16, i32, i64, isize, }

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Value {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(Number::PosInt(v)) => serializer.serialize_u64(*v),
            Value::Number(Number::NegInt(v)) => serializer.serialize_i64(*v),
            Value::Number(Number::Float(v)) => serializer.serialize_f64(*v),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Object(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (key, item) in entries {
                    map.serialize_entry(key, item)?;
                }
                map.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(crate::content_to_value(deserializer.take_content()?))
    }
}

/// [`Serializer`] producing a [`Value`] tree.
pub(crate) struct ValueSerializer;

pub(crate) struct SeqSerializer {
    items: Vec<Value>,
}

pub(crate) struct StructSerializer {
    entries: Vec<(String, Value)>,
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqSerializer;
    type SerializeMap = StructSerializer;
    type SerializeStruct = StructSerializer;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::from(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::from(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::from(v))
    }

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_string()))
    }

    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<SeqSerializer, Error> {
        Ok(SeqSerializer {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<StructSerializer, Error> {
        Ok(StructSerializer {
            entries: Vec::with_capacity(len.unwrap_or(0)),
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<StructSerializer, Error> {
        Ok(StructSerializer {
            entries: Vec::with_capacity(len),
        })
    }
}

impl SerializeSeq for SeqSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

impl SerializeStruct for StructSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.entries
            .push((key.to_string(), value.serialize(ValueSerializer)?));
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.entries))
    }
}

impl SerializeMap for StructSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_entry<T: Serialize + ?Sized>(
        &mut self,
        key: &str,
        value: &T,
    ) -> Result<(), Error> {
        self.entries
            .push((key.to_string(), value.serialize(ValueSerializer)?));
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.entries))
    }
}
