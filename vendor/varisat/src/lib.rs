//! Minimal vendored stand-in for the `varisat` crate (offline build).
//!
//! The workspace uses varisat as an *independent* second SAT solver for
//! cross-checking the in-tree CDCL. This shim keeps that property: it
//! is a self-contained CDCL implementation (two watched literals, 1UIP
//! learning, activity decay, phase saving, Luby restarts) sharing no
//! code with the `sat` crate, behind varisat's `Solver`/`CnfFormula`
//! API surface.

#![forbid(unsafe_code)]

/// A literal in DIMACS-compatible encoding (`code = 2*var + negated`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lit {
    code: u32,
}

impl Lit {
    /// Builds a literal from a non-zero DIMACS integer.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn from_dimacs(d: isize) -> Lit {
        assert!(d != 0, "DIMACS literals are non-zero");
        let var = d.unsigned_abs() - 1;
        Lit {
            code: (var as u32) << 1 | u32::from(d < 0),
        }
    }

    /// The literal as a DIMACS integer.
    pub fn to_dimacs(self) -> isize {
        let v = (self.code >> 1) as isize + 1;
        if self.code & 1 == 1 {
            -v
        } else {
            v
        }
    }

    fn var(self) -> usize {
        (self.code >> 1) as usize
    }

    fn is_neg(self) -> bool {
        self.code & 1 == 1
    }

    fn negated(self) -> Lit {
        Lit {
            code: self.code ^ 1,
        }
    }

    fn index(self) -> usize {
        self.code as usize
    }

    fn from_parts(var: usize, neg: bool) -> Lit {
        Lit {
            code: (var as u32) << 1 | u32::from(neg),
        }
    }
}

/// Types accepting clauses.
pub trait ExtendFormula {
    /// Adds one clause (a disjunction of literals).
    fn add_clause(&mut self, lits: &[Lit]);
}

/// A CNF formula under construction.
#[derive(Clone, Debug, Default)]
pub struct CnfFormula {
    clauses: Vec<Vec<Lit>>,
    num_vars: usize,
}

impl CnfFormula {
    /// An empty formula.
    pub fn new() -> CnfFormula {
        CnfFormula::default()
    }

    /// Number of variables mentioned so far.
    pub fn var_count(&self) -> usize {
        self.num_vars
    }
}

impl ExtendFormula for CnfFormula {
    fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            self.num_vars = self.num_vars.max(l.var() + 1);
        }
        self.clauses.push(lits.to_vec());
    }
}

/// Error type for [`Solver::solve`] (never produced by this shim; the
/// `Result` mirrors varisat's fallible API).
#[derive(Debug)]
pub struct SolverError;

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("solver error")
    }
}

impl std::error::Error for SolverError {}

const UNASSIGNED: u8 = 2;
const NO_REASON: u32 = u32::MAX;

fn lit_value_in(values: &[u8], lit: Lit) -> u8 {
    let v = values[lit.var()];
    if v == UNASSIGNED {
        UNASSIGNED
    } else {
        v ^ u8::from(lit.is_neg())
    }
}

/// An incremental CDCL SAT solver.
#[derive(Default)]
pub struct Solver {
    clauses: Vec<Vec<Lit>>,
    first_learnt: usize,
    watches: Vec<Vec<u32>>,
    /// 0 = true, 1 = false, 2 = unassigned; indexed by variable.
    values: Vec<u8>,
    phase: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    act_inc: f64,
    assumptions: Vec<Lit>,
    model: Option<Vec<Lit>>,
    /// Clauses that were already false/unit at level 0 when added.
    unsat_at_add: bool,
    pending_units: Vec<Lit>,
    seen: Vec<bool>,
}

impl Solver {
    /// A fresh solver.
    pub fn new() -> Solver {
        Solver {
            act_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Adds all clauses of a formula.
    pub fn add_formula(&mut self, formula: &CnfFormula) {
        for clause in &formula.clauses {
            self.add_clause_internal(clause);
        }
    }

    /// Sets the assumptions for subsequent [`Solver::solve`] calls.
    pub fn assume(&mut self, assumptions: &[Lit]) {
        self.assumptions = assumptions.to_vec();
    }

    /// Solves under the current assumptions.
    ///
    /// # Errors
    ///
    /// Infallible in this shim; `Result` mirrors varisat's API.
    pub fn solve(&mut self) -> Result<bool, SolverError> {
        Ok(self.search())
    }

    /// The satisfying assignment of the last successful solve.
    pub fn model(&self) -> Option<Vec<Lit>> {
        self.model.clone()
    }

    fn ensure_var(&mut self, var: usize) {
        while self.values.len() <= var {
            self.values.push(UNASSIGNED);
            self.phase.push(1);
            self.level.push(0);
            self.reason.push(NO_REASON);
            self.activity.push(0.0);
            self.seen.push(false);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
        }
    }

    fn add_clause_internal(&mut self, lits: &[Lit]) {
        let mut clause: Vec<Lit> = lits.to_vec();
        clause.sort_unstable();
        clause.dedup();
        // Tautology?
        if clause.windows(2).any(|w| w[0] == w[1].negated()) {
            return;
        }
        for l in &clause {
            self.ensure_var(l.var());
        }
        match clause.len() {
            0 => self.unsat_at_add = true,
            1 => self.pending_units.push(clause[0]),
            _ => {
                let idx = self.clauses.len() as u32;
                self.watch(clause[0], idx);
                self.watch(clause[1], idx);
                self.clauses.push(clause);
                self.first_learnt = self.clauses.len();
            }
        }
    }

    fn watch(&mut self, lit: Lit, clause: u32) {
        self.watches[lit.index()].push(clause);
    }

    fn lit_value(&self, lit: Lit) -> u8 {
        lit_value_in(&self.values, lit)
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) -> bool {
        match self.lit_value(lit) {
            0 => true,
            1 => false,
            _ => {
                self.values[lit.var()] = u8::from(lit.is_neg());
                self.level[lit.var()] = self.decision_level() as u32;
                self.reason[lit.var()] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = lit.negated();
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                let clause = &mut self.clauses[ci as usize];
                // Normalize: watched literals at positions 0 and 1.
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                let first = clause[0];
                if lit_value_in(&self.values, first) == 0 {
                    i += 1;
                    continue; // already satisfied
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..clause.len() {
                    if lit_value_in(&self.values, clause[k]) != 1 {
                        clause.swap(1, k);
                        let new_watch = clause[1];
                        self.watches[new_watch.index()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                if !self.enqueue(first, ci) {
                    // Re-register the unprocessed rest of the watch list.
                    self.watches[false_lit.index()].append(&mut watch_list);
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[false_lit.index()] = watch_list;
        }
        None
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.act_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// 1UIP conflict analysis; returns (learnt clause, backjump level).
    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::from_parts(0, false)]; // placeholder slot
        let mut counter = 0usize;
        let mut trail_pos = self.trail.len();
        let mut uip = None;
        loop {
            let start = if uip.is_none() { 0 } else { 1 };
            let clause = self.clauses[conflict as usize].clone();
            for &q in &clause[start..] {
                let v = q.var();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] as usize == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                trail_pos -= 1;
                let p = self.trail[trail_pos];
                if self.seen[p.var()] {
                    uip = Some(p);
                    self.seen[p.var()] = false;
                    counter -= 1;
                    break;
                }
            }
            if counter == 0 {
                break;
            }
            let p = uip.expect("uip literal");
            conflict = self.reason[p.var()];
            debug_assert_ne!(conflict, NO_REASON);
            // The reason clause has p at position 0 by construction; we
            // re-find it defensively since watches may have reordered.
            let rc = &mut self.clauses[conflict as usize];
            if rc[0] != p {
                let pos = rc
                    .iter()
                    .position(|&l| l == p)
                    .expect("reason contains lit");
                rc.swap(0, pos);
            }
        }
        learnt[0] = uip.expect("conflict at level > 0").negated();
        for l in &learnt[1..] {
            self.seen[l.var()] = false;
        }
        // Backjump to the second-highest level in the learnt clause.
        let backjump = learnt[1..]
            .iter()
            .map(|l| self.level[l.var()] as usize)
            .max()
            .unwrap_or(0);
        (learnt, backjump)
    }

    fn backtrack(&mut self, target_level: usize) {
        while self.decision_level() > target_level {
            let lim = self.trail_lim.pop().expect("level to pop");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail entry");
                let v = lit.var();
                self.phase[v] = self.values[v];
                self.values[v] = UNASSIGNED;
                self.reason[v] = NO_REASON;
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (v, &val) in self.values.iter().enumerate() {
            if val == UNASSIGNED {
                let a = self.activity[v];
                if best.is_none_or(|(_, ba)| a > ba) {
                    best = Some((v, a));
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// The Luby restart sequence 1 1 2 1 1 2 4 ... (1-indexed).
    fn luby(mut i: u64) -> u64 {
        loop {
            if (i + 1).is_power_of_two() {
                return (i + 1) >> 1;
            }
            let k = 63 - (i + 1).leading_zeros() as u64; // floor(log2(i+1))
            i -= (1 << k) - 1;
        }
    }

    fn search(&mut self) -> bool {
        self.model = None;
        if self.unsat_at_add {
            return false;
        }
        self.backtrack(0);
        // Level-0 units from clause addition.
        let units = std::mem::take(&mut self.pending_units);
        for u in units {
            if !self.enqueue(u, NO_REASON) {
                self.unsat_at_add = true;
                return false;
            }
        }
        if self.propagate().is_some() {
            self.unsat_at_add = true;
            return false;
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_round = 0u64;
        let mut restart_limit = 32 * Self::luby(restart_round + 1);
        loop {
            if let Some(conflict) = self.propagate() {
                if self.decision_level() == 0 {
                    return false;
                }
                conflicts_since_restart += 1;
                self.act_inc /= 0.95;
                let (learnt, backjump) = self.analyze(conflict);
                self.backtrack(backjump);
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], NO_REASON) {
                        return false;
                    }
                } else {
                    let idx = self.clauses.len() as u32;
                    let asserting = learnt[0];
                    self.watch(learnt[0], idx);
                    self.watch(learnt[1], idx);
                    self.clauses.push(learnt);
                    let ok = self.enqueue(asserting, idx);
                    debug_assert!(ok, "learnt clause must be asserting");
                }
            } else {
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_round += 1;
                    restart_limit = 32 * Self::luby(restart_round + 1);
                    self.backtrack(0);
                    continue;
                }
                // Assumptions first, in order, one per decision level.
                if self.decision_level() < self.assumptions.len() {
                    let a = self.assumptions[self.decision_level()];
                    self.ensure_var(a.var());
                    match self.lit_value(a) {
                        0 => {
                            // Already true: open a dummy level to keep
                            // the level ↔ assumption indexing aligned.
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        1 => return false, // conflicts with assumptions
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                            continue;
                        }
                    }
                }
                match self.pick_branch_var() {
                    None => {
                        self.model = Some(
                            self.values
                                .iter()
                                .enumerate()
                                .map(|(v, &val)| Lit::from_parts(v, val == 1))
                                .collect(),
                        );
                        self.backtrack(0);
                        return true;
                    }
                    Some(v) => {
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::from_parts(v, self.phase[v] == 1);
                        self.enqueue(lit, NO_REASON);
                    }
                }
            }
        }
    }
}

impl ExtendFormula for Solver {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.add_clause_internal(lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: isize) -> Lit {
        Lit::from_dimacs(d)
    }

    fn solve(clauses: &[&[isize]]) -> (bool, Option<Vec<Lit>>) {
        let mut f = CnfFormula::new();
        for c in clauses {
            let lits: Vec<Lit> = c.iter().map(|&d| lit(d)).collect();
            f.add_clause(&lits);
        }
        let mut s = Solver::new();
        s.add_formula(&f);
        let sat = s.solve().unwrap();
        (sat, s.model())
    }

    #[test]
    fn trivial_sat_and_unsat() {
        assert!(solve(&[&[1, 2], &[-1, 2], &[1, -2]]).0);
        assert!(!solve(&[&[1], &[-1]]).0);
        assert!(!solve(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]).0);
    }

    #[test]
    fn model_satisfies_formula() {
        let clauses: &[&[isize]] = &[&[1, 2, 3], &[-1, -2], &[-2, -3], &[2]];
        let (sat, model) = solve(clauses);
        assert!(sat);
        let model = model.unwrap();
        for c in clauses {
            assert!(c.iter().any(|&d| model.contains(&lit(d))), "clause {c:?}");
        }
    }

    #[test]
    fn assumptions_flip_verdict() {
        let mut f = CnfFormula::new();
        f.add_clause(&[lit(1), lit(2)]);
        let mut s = Solver::new();
        s.add_formula(&f);
        s.assume(&[lit(-1), lit(-2)]);
        assert!(!s.solve().unwrap());
        s.assume(&[lit(-1)]);
        assert!(s.solve().unwrap());
        s.assume(&[]);
        assert!(s.solve().unwrap());
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Pigeons p in 1..=3, holes h in 1..=2; var(p, h) = 2(p-1)+h.
        let v = |p: isize, h: isize| 2 * (p - 1) + h;
        let mut clauses: Vec<Vec<isize>> = Vec::new();
        for p in 1..=3 {
            clauses.push(vec![v(p, 1), v(p, 2)]);
        }
        for h in 1..=2 {
            for p1 in 1..=3 {
                for p2 in (p1 + 1)..=3 {
                    clauses.push(vec![-v(p1, h), -v(p2, h)]);
                }
            }
        }
        let refs: Vec<&[isize]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert!(!solve(&refs).0);
    }

    #[test]
    fn random_instances_match_brute_force() {
        // Simple deterministic pseudo-random 3-SAT instances.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let n = 8;
            let m = 10 + (next() % 30) as usize;
            let mut clauses: Vec<Vec<isize>> = Vec::new();
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let var = (next() % n as u64) as isize + 1;
                    c.push(if next() % 2 == 0 { var } else { -var });
                }
                clauses.push(c);
            }
            let brute = (0u32..1 << n).any(|mask| {
                clauses.iter().all(|c| {
                    c.iter().any(|&d| {
                        let val = mask >> (d.unsigned_abs() - 1) & 1 == 1;
                        if d > 0 {
                            val
                        } else {
                            !val
                        }
                    })
                })
            });
            let refs: Vec<&[isize]> = clauses.iter().map(|c| c.as_slice()).collect();
            let (sat, _) = solve(&refs);
            assert_eq!(sat, brute, "round {round}: {clauses:?}");
        }
    }
}
