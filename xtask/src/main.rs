//! `cargo run -p xtask -- lint` — token-level source lint for the
//! workspace's library crates.
//!
//! Three rules, all scoped to hand-written library code (`crates/*/src`
//! and the facade `src/lib.rs`; binaries under `src/bin/`, integration
//! tests, benches, vendored shims, and inline `#[cfg(test)]` modules
//! are exempt):
//!
//! * `no-panic` — forbids `.unwrap()`, `.expect(` and `panic!(`.
//!   Library code reports errors through `Result`/`Option` or asserts a
//!   named invariant; every deliberate panic site must carry a
//!   `// lint:allow(no-panic)` escape explaining itself by adjacency.
//! * `hot-path-alloc` — forbids `Vec::new`, `format!` and `.clone()`
//!   inside regions bracketed by `// lint:hot-path` ...
//!   `// lint:hot-path-end`. The solver's propagate/analyze inner loops
//!   are marked; an allocation there is a performance bug, not a style
//!   choice.
//! * `no-std-hashmap` — forbids `HashMap` in `crates/sat/src/solver*`
//!   sources. std's SipHash default is measurably slow for the solver's
//!   u32 keys; hot structures use indexed `Vec`s instead. Cold
//!   diagnostic code opts out with `// lint:allow(no-std-hashmap)`.
//!
//! An escape comment suppresses a rule on its own line or, when the
//! line is pure comment, on the next source line. Escapes name the rule
//! (`// lint:allow(no-panic)`), so a reviewer greps for exactly the
//! sites that were judged acceptable.
//!
//! The scanner is deliberately token-level, not syntactic: it strips
//! comments and string/char literals with a small state machine, tracks
//! `#[cfg(test)] mod` regions by brace depth, and substring-matches the
//! forbidden tokens on what remains. That is crude but dependency-free,
//! fast (whole workspace in milliseconds), and has no false positives
//! on this codebase by construction — the unit tests below pin the
//! corner cases (strings containing `panic!`, raw strings, nested test
//! modules, escape placement).

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop(); // xtask/ -> workspace root
    let mut iter = args.iter();
    let mut cmd = None;
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--root" => match iter.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "lint" if cmd.is_none() => cmd = Some("lint"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
                return ExitCode::from(2);
            }
        }
    }
    if cmd != Some("lint") {
        eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
        return ExitCode::from(2);
    }

    let files = collect_sources(&root);
    if files.is_empty() {
        eprintln!("xtask lint: no sources found under {}", root.display());
        return ExitCode::from(2);
    }
    let mut findings = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let label = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .display()
            .to_string();
        findings.extend(lint_source(&label, &source));
    }
    if findings.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "xtask lint: {} finding(s) in {} files",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// Library sources to lint: `crates/*/src/**/*.rs` minus `src/bin/`,
/// plus the facade `src/lib.rs`. Vendored shims, integration tests and
/// benches live outside these roots and are never visited.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk(&src, &mut out);
            }
        }
    }
    let facade = root.join("src/lib.rs");
    if facade.is_file() {
        out.push(facade);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `src/bin/` holds binaries (bench drivers), not library
            // code; the no-panic contract does not apply there.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    token: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] forbidden token `{}` (escape with // lint:allow({}))",
            self.file, self.line, self.rule, self.token, self.rule
        )
    }
}

const NO_PANIC: &str = "no-panic";
const HOT_PATH_ALLOC: &str = "hot-path-alloc";
const NO_STD_HASHMAP: &str = "no-std-hashmap";

const PANIC_TOKENS: [&str; 3] = [".unwrap()", ".expect(", "panic!("];
const ALLOC_TOKENS: [&str; 3] = ["Vec::new", "format!", ".clone()"];

/// Scan one file. `label` is the path reported in findings; rule
/// applicability keys off it (the `no-std-hashmap` rule only covers the
/// solver sources).
fn lint_source(label: &str, source: &str) -> Vec<Finding> {
    let solver_scope = label.contains("sat/src/solver");
    let mut findings = Vec::new();
    let mut strip = Stripper::default();
    // Depth of the brace-counted `#[cfg(test)]` region being skipped
    // (None when outside one), plus the armed state between the
    // attribute line and the `{` that opens the module.
    let mut test_region: Option<usize> = None;
    let mut test_armed = false;
    let mut hot_path = false;
    let mut allow_next: Vec<&'static str> = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip.strip_line(raw_line);

        // Directives live in comments, which the stripper removes —
        // read them from the raw line. A directive on a pure-comment
        // line applies to the next source line.
        let mut allow_here = std::mem::take(&mut allow_next);
        for rule in [NO_PANIC, HOT_PATH_ALLOC, NO_STD_HASHMAP] {
            let directive = format!("lint:allow({rule})");
            if raw_line.contains(&directive) {
                allow_here.push(rule);
                if code.trim().is_empty() {
                    allow_next.push(rule);
                }
            }
        }
        if raw_line.contains("lint:hot-path-end") {
            hot_path = false;
        } else if raw_line.contains("lint:hot-path") {
            hot_path = true;
        }

        // `#[cfg(test)]` opens a skip region at the next `{` (the test
        // module body); everything inside is exempt from all rules.
        if code.contains("#[cfg(test)]") {
            test_armed = true;
        }
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        if let Some(depth) = test_region.as_mut() {
            *depth += opens;
            *depth = depth.saturating_sub(closes);
            if *depth == 0 {
                test_region = None;
            }
            continue;
        }
        if test_armed && opens > 0 {
            test_armed = false;
            let depth = opens - closes;
            if depth > 0 {
                test_region = Some(depth);
            }
            continue;
        }
        if test_armed {
            continue; // between the attribute and the opening brace
        }

        let mut report = |rule: &'static str, token: &'static str| {
            if !allow_here.contains(&rule) {
                findings.push(Finding {
                    file: label.to_string(),
                    line: line_no,
                    rule,
                    token,
                });
            }
        };
        for token in PANIC_TOKENS {
            if code.contains(token) {
                report(NO_PANIC, token);
            }
        }
        if hot_path {
            for token in ALLOC_TOKENS {
                if code.contains(token) {
                    report(HOT_PATH_ALLOC, token);
                }
            }
        }
        if solver_scope && code.contains("HashMap") {
            report(NO_STD_HASHMAP, "HashMap");
        }
    }
    findings
}

/// Removes comments and string/char literal *contents* from source
/// lines so token matching never fires inside them. Block comments and
/// (non-`#` / single-`#`) raw strings carry state across lines.
#[derive(Default)]
struct Stripper {
    in_block_comment: usize,
    in_string: Option<StringKind>,
}

#[derive(Clone, Copy, PartialEq)]
enum StringKind {
    Normal,
    Raw { hashes: usize },
}

impl Stripper {
    fn strip_line(&mut self, line: &str) -> String {
        let b = line.as_bytes();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < b.len() {
            if self.in_block_comment > 0 {
                if b[i..].starts_with(b"*/") {
                    self.in_block_comment -= 1;
                    i += 2;
                } else if b[i..].starts_with(b"/*") {
                    self.in_block_comment += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if let Some(kind) = self.in_string {
                match kind {
                    StringKind::Normal => {
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'"' {
                            self.in_string = None;
                            out.push('"');
                            i += 1;
                        } else {
                            i += 1;
                        }
                    }
                    StringKind::Raw { hashes } => {
                        if b[i] == b'"'
                            && b[i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes
                        {
                            self.in_string = None;
                            out.push('"');
                            i += 1 + hashes;
                        } else {
                            i += 1;
                        }
                    }
                }
                continue;
            }
            if b[i..].starts_with(b"//") {
                break; // line comment: drop the rest
            }
            if b[i..].starts_with(b"/*") {
                self.in_block_comment += 1;
                i += 2;
                continue;
            }
            if b[i] == b'"' {
                self.in_string = Some(StringKind::Normal);
                out.push('"');
                i += 1;
                continue;
            }
            if b[i] == b'r' {
                let rest = &b[i + 1..];
                let hashes = rest.iter().take_while(|&&c| c == b'#').count();
                if rest.get(hashes) == Some(&b'"') {
                    self.in_string = Some(StringKind::Raw { hashes });
                    out.push('"');
                    i += 2 + hashes;
                    continue;
                }
            }
            if b[i] == b'\'' {
                // Char literal (`'a'`, `'\n'`) vs lifetime (`'a`): a
                // literal closes with a quote within a few bytes.
                let close = if b.get(i + 1) == Some(&b'\\') {
                    b[i + 2..]
                        .iter()
                        .position(|&c| c == b'\'')
                        .map(|p| i + 3 + p)
                } else if b.get(i + 2) == Some(&b'\'') {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(end) = close {
                    out.push('\'');
                    out.push('\'');
                    i = end + 1;
                    continue;
                }
            }
            out.push(b[i] as char);
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str) -> Vec<(&'static str, usize)> {
        lint_source("crates/demo/src/lib.rs", src)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn flags_panic_family_in_library_code() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\nfn g() {\n    panic!(\"boom\");\n}\n";
        assert_eq!(rules(src), vec![("no-panic", 2), ("no-panic", 5)]);
    }

    #[test]
    fn allow_escape_suppresses_same_line_and_next_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // lint:allow(no-panic)\n}\n\
                   fn g(x: Option<u32>) -> u32 {\n    // heap is non-empty here: lint:allow(no-panic)\n    x.unwrap()\n}\n";
        assert_eq!(rules(src), vec![]);
    }

    #[test]
    fn allow_escape_is_rule_specific() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // lint:allow(no-std-hashmap)\n}\n";
        assert_eq!(rules(src), vec![("no-panic", 2)]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() -> &'static str {\n    // a comment mentioning panic!(\n    /* .unwrap() in a block\n       comment */\n    \"contains panic!( and .unwrap()\"\n}\n";
        assert_eq!(rules(src), vec![]);
        let raw = "fn f() -> &'static str {\n    r#\"raw with .expect( inside\n       still raw .unwrap()\"#\n}\n";
        assert_eq!(rules(raw), vec![]);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n        panic!(\"fine in tests\");\n    }\n}\nfn after() -> u32 {\n    None.unwrap()\n}\n";
        assert_eq!(rules(src), vec![("no-panic", 11)]);
    }

    #[test]
    fn hot_path_regions_flag_allocations() {
        let src = "fn cold() {\n    let v: Vec<u32> = Vec::new();\n    drop(v);\n}\n\
                   // lint:hot-path\nfn hot(xs: &[u32]) -> Vec<u32> {\n    let mut v = Vec::new();\n    let s = format!(\"{xs:?}\");\n    drop(s);\n    xs.to_vec().clone()\n}\n// lint:hot-path-end\n\
                   fn cold2() -> String {\n    format!(\"ok\")\n}\n";
        assert_eq!(
            rules(src),
            vec![
                ("hot-path-alloc", 7),
                ("hot-path-alloc", 8),
                ("hot-path-alloc", 10)
            ]
        );
    }

    #[test]
    fn hashmap_rule_only_covers_solver_sources() {
        let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> {\n    HashMap::default()\n}\n";
        assert_eq!(rules(src), vec![]);
        let solver: Vec<_> = lint_source("crates/sat/src/solver/inprocess.rs", src)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect();
        assert_eq!(
            solver,
            vec![
                ("no-std-hashmap", 1),
                ("no-std-hashmap", 2),
                ("no-std-hashmap", 3)
            ]
        );
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_confuse_the_stripper() {
        let src = "fn f<'a>(s: &'a str) -> usize {\n    s.chars().filter(|&c| c == '\"').count()\n}\nfn g() {\n    let _ = Some('x').unwrap();\n}\n";
        assert_eq!(rules(src), vec![("no-panic", 5)]);
    }

    #[test]
    fn multiline_strings_carry_state() {
        let src = "const S: &str = \"line one .unwrap()\nline two panic!( still string\";\nfn f(x: Option<u32>) -> u32 {\n    x.expect(\"named invariant\")\n}\n";
        assert_eq!(rules(src), vec![("no-panic", 4)]);
    }
}
